type t = {
  core : Level_based.Core.t;
  k : int;
  promoted : Intf.task Queue.t;
  mutable stale : bool; (* recompute the lookahead on next blocked query? *)
}

let create ?ops ?levels ~k g =
  if k < 1 then invalid_arg "Lookahead: k must be >= 1";
  { core = Level_based.Core.create ?ops ?levels g; k; promoted = Queue.create (); stale = true }

let on_activated t u =
  t.stale <- true;
  Level_based.Core.on_activated t.core u

let on_started t u = Level_based.Core.on_started t.core u

let on_completed t u =
  t.stale <- true;
  Level_based.Core.on_completed t.core u

(* Recompute promotable tasks: BFS from every unexecuted-active or
   running task, bounded to levels <= gate + k; any queued active task
   in (gate, gate + k] not reached is safe to run early. *)
let recompute t ~gate =
  let core = t.core in
  let g = Level_based.Core.graph core in
  let levels = Level_based.Core.levels core in
  let ops = Level_based.Core.ops core in
  let active = Level_based.Core.active core in
  Queue.clear t.promoted;
  let seeds = Prelude.Vec.create ~dummy:0 () in
  Prelude.Bitset.iter (fun u -> Prelude.Vec.push seeds u) active;
  let seeds = Prelude.Vec.to_array seeds in
  let max_level = gate + t.k in
  let blocked = Dag.Reach.reachable_within g ~seeds ~max_level ~levels in
  ops.Intf.bfs_steps <-
    ops.Intf.bfs_steps + Array.length seeds + Prelude.Bitset.cardinal blocked;
  (* candidates: active, unstarted, level in (gate, gate+k], unblocked *)
  Array.iter
    (fun u ->
      ops.Intf.bfs_steps <- ops.Intf.bfs_steps + 1;
      if
        levels.(u) > gate
        && levels.(u) <= max_level
        && (not (Level_based.Core.is_started core u))
        && not (Prelude.Bitset.mem blocked u)
      then Queue.add u t.promoted)
    seeds;
  t.stale <- false

let rec pop_promoted t =
  if Queue.is_empty t.promoted then None
  else begin
    let u = Queue.pop t.promoted in
    if Level_based.Core.is_started t.core u then pop_promoted t else Some u
  end

let next_ready t =
  match Level_based.Core.next_ready t.core with
  | Some u -> Some u
  | None -> (
    match pop_promoted t with
    | Some u -> Some u
    | None ->
      if not t.stale then None
      else begin
        (* blocked: gate is the running level holding us back (or the
           lowest queued level when nothing runs, which base LB would
           have served — so a gate below la implies a running level). *)
        match Level_based.Core.min_running_level t.core with
        | None -> None
        | Some gate ->
          if Level_based.Core.min_queued_level t.core = None then None
          else begin
            recompute t ~gate;
            pop_promoted t
          end
      end)

let make ?ops ?levels ~k g =
  let t = create ?ops ?levels ~k g in
  {
    Intf.name = Printf.sprintf "LBL(k=%d)" k;
    on_activated = on_activated t;
    on_started = on_started t;
    on_completed = on_completed t;
    next_ready = (fun () -> next_ready t);
    next_ready_into = None;
    ops = Level_based.Core.ops t.core;
    memory_words = (fun () -> Level_based.Core.memory_words t.core + Queue.length t.promoted);
  }

let factory ~k =
  { Intf.fname = Printf.sprintf "lbl:%d" k; make = (fun g -> make ~k g) }
