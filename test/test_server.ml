(* Update-server stack: protocol parse/format round trips, repl error
   replies that keep the session alive, engine admission + epoch
   semantics, commit coalescing, and the snapshot-isolation guarantee
   (a reader on epoch N sees bit-identical results while epoch N+1's
   commit is mid-flight). *)

let test case name f = Alcotest.test_case name case f

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let check_string = Alcotest.(check string)

(* ---- protocol ---- *)

let all_commands =
  [
    Server.Protocol.Insert "edge(\"a\", \"b\")";
    Server.Protocol.Remove "edge(\"a\", \"b\")";
    Server.Protocol.Commit;
    Server.Protocol.Query "path(\"a\", X)";
    Server.Protocol.Stats;
    Server.Protocol.Help;
    Server.Protocol.Quit;
  ]

let protocol_round_trip () =
  List.iter
    (fun cmd ->
      let line = Server.Protocol.format cmd in
      match Server.Protocol.parse line with
      | Ok cmd' -> check_bool ("round trip: " ^ line) true (cmd = cmd')
      | Error m -> Alcotest.failf "%s did not re-parse: %s" line m)
    all_commands

let protocol_trims_and_splits () =
  (match Server.Protocol.parse "   insert \t edge(\"a\",\"b\")  \r" with
  | Ok (Server.Protocol.Insert payload) ->
    check_string "payload trimmed" "edge(\"a\",\"b\")" payload
  | _ -> Alcotest.fail "surrounding whitespace should be ignored");
  match Server.Protocol.parse "  commit  " with
  | Ok Server.Protocol.Commit -> ()
  | _ -> Alcotest.fail "bare keyword with padding should parse"

let protocol_rejects () =
  let expect_err line =
    match Server.Protocol.parse line with
    | Error m ->
      check_bool
        (Printf.sprintf "%S error mentions nothing empty" line)
        true (m <> "")
    | Ok _ -> Alcotest.failf "%S should be rejected" line
  in
  expect_err "";
  expect_err "   ";
  expect_err "insert";
  expect_err "remove  ";
  expect_err "query";
  expect_err "commit edge(\"a\", \"b\")";
  expect_err "stats now";
  expect_err "quit please";
  expect_err "frobnicate everything";
  (* keywords are lowercase; anything else is unknown, not magic *)
  expect_err "INSERT edge(\"a\", \"b\")"

(* ---- engine fixture ---- *)

let tc_source =
  "edge(\"a\",\"b\"). edge(\"b\",\"c\"). edge(\"c\",\"d\").\n\
   path(X,Y) :- edge(X,Y).\n\
   path(X,Z) :- path(X,Y), edge(Y,Z).\n"

let make_engine ?maint ?(source = tc_source) () =
  Server.Engine.create ?maint (Incr_sched.materialize source)

let facts_of engine pattern =
  match Server.Engine.query engine pattern with
  | Ok (atoms, epoch) ->
    ( List.map (fun a -> Format.asprintf "%a" Datalog.Ast.pp_atom a) atoms,
      epoch )
  | Error m -> Alcotest.failf "query %s failed: %s" pattern m

(* ---- engine: admission ---- *)

let submit_validation () =
  let e = make_engine () in
  let expect_err what side text =
    match Server.Engine.submit e side text with
    | Error m -> check_bool (what ^ " reports a reason") true (m <> "")
    | Ok () -> Alcotest.failf "%s should be rejected" what
  in
  expect_err "syntax error" `Insert "edge(\"a\"";
  expect_err "non-ground fact" `Insert "edge(\"a\", X)";
  expect_err "derived head" `Insert "path(\"a\", \"z\")";
  expect_err "derived head removal" `Remove "path(\"a\", \"b\")";
  expect_err "arity mismatch" `Insert "edge(\"a\", \"b\", \"c\")";
  check_int "nothing was admitted" 0 (Server.Engine.pending_ops e);
  (* a brand-new predicate is a legal base relation *)
  check_bool "fresh predicate admitted" true
    (Server.Engine.submit e `Insert "label(\"a\", \"blue\")" = Ok ());
  check_int "one pending op" 1 (Server.Engine.pending_ops e)

let submit_last_wins () =
  let e = make_engine () in
  (* same fact, both sides: the later submit owns the batch slot *)
  check_bool "insert ok" true
    (Server.Engine.submit e `Insert "edge(\"c\", \"a\")" = Ok ());
  check_bool "remove same fact ok" true
    (Server.Engine.submit e `Remove "edge(\"c\", \"a\")" = Ok ());
  check_int "one slot, not two" 1 (Server.Engine.pending_ops e);
  (* spacing differences canonicalize to the same slot *)
  check_bool "respaced insert ok" true
    (Server.Engine.submit e `Insert "edge( \"c\" , \"a\" )" = Ok ());
  check_int "still one slot" 1 (Server.Engine.pending_ops e);
  let stats = Server.Engine.commit e in
  check_int "one commit" 1 (List.length stats);
  let s = List.hd stats in
  check_int "one op in the batch" 1 s.Server.Engine.ops;
  check_int "it is an addition (last submit won)" 1 s.Server.Engine.additions;
  let facts, _ = facts_of e "edge(\"c\", \"a\")" in
  check_int "fact landed" 1 (List.length facts)

(* ---- engine: epochs ---- *)

let commit_advances_epochs () =
  let e = make_engine () in
  check_int "starts at epoch 0" 0 (Server.Engine.epoch e);
  let initial, epoch0 = facts_of e "path(\"a\", X)" in
  check_int "queried epoch 0" 0 epoch0;
  check_int "a reaches b c d" 3 (List.length initial);
  ignore (Server.Engine.submit e `Insert "edge(\"d\", \"e\")");
  let stats = Server.Engine.commit e in
  check_int "one commit published" 1 (List.length stats);
  check_int "epoch 1" 1 (Server.Engine.epoch e);
  check_int "commit count" 1 (Server.Engine.commits e);
  let after, epoch1 = facts_of e "path(\"a\", X)" in
  check_int "queried epoch 1" 1 epoch1;
  check_int "a now reaches e too" 4 (List.length after);
  (* an empty batch still publishes an epoch *)
  let stats = Server.Engine.commit e in
  check_int "empty commit publishes" 1 (List.length stats);
  check_int "zero ops" 0 (List.hd stats).Server.Engine.ops;
  check_int "epoch 2" 2 (Server.Engine.epoch e)

let deletion_maintains () =
  let e = make_engine ~maint:Datalog.Incremental.Counting () in
  ignore (Server.Engine.submit e `Remove "edge(\"b\", \"c\")");
  let stats = Server.Engine.commit e in
  check_int "one deletion" 1 (List.hd stats).Server.Engine.deletions;
  let facts, _ = facts_of e "path(\"a\", X)" in
  check_string "only the direct edge survives" "path(\"a\", \"b\")"
    (String.concat " " facts)

(* ---- engine: coalescing ---- *)

let async_coalesces () =
  let e = make_engine () in
  ignore (Server.Engine.submit e `Insert "edge(\"d\", \"e\")");
  (match Server.Engine.commit_async e with
  | `Started target -> check_int "first request starts epoch 1" 1 target
  | `Coalesced -> Alcotest.fail "nothing inflight yet: must start");
  (* ops queued while the background commit runs ride the follow-up *)
  ignore (Server.Engine.submit e `Insert "edge(\"e\", \"f\")");
  let second = Server.Engine.commit_async e in
  let third = Server.Engine.commit_async e in
  check_bool "second request coalesces" true (second = `Coalesced);
  check_bool "repeat request still coalesced" true (third = `Coalesced);
  let stats = Server.Engine.await e in
  check_int "two maintenance runs serve three requests" 2 (List.length stats);
  check_int "engine settled at epoch 2" 2 (Server.Engine.epoch e);
  check_bool "nothing inflight" false (Server.Engine.inflight e);
  let facts, epoch = facts_of e "path(\"a\", X)" in
  check_int "snapshot is epoch 2" 2 epoch;
  check_int "both inserts landed" 5 (List.length facts)

(* ---- engine: snapshot isolation ---- *)

(* The ISSUE's concurrency guarantee: a reader on epoch N sees
   bit-identical results while epoch N+1's commit is mid-flight.
   Publication only happens in drain/await/commit on the client
   thread, so between commit_async and await every query must serve
   the old frozen snapshot no matter how far the background domain
   has gotten with the live database. *)
let snapshot_isolation () =
  (* a wider graph so the background run is not instantaneous *)
  let buf = Buffer.create 4096 in
  for i = 0 to 120 do
    Buffer.add_string buf (Printf.sprintf "edge(\"v%d\",\"v%d\").\n" i (i + 1))
  done;
  Buffer.add_string buf "path(X,Y) :- edge(X,Y).\n";
  Buffer.add_string buf "path(X,Z) :- path(X,Y), edge(Y,Z).\n";
  let e = make_engine ~source:(Buffer.contents buf) () in
  let before, epoch_before = facts_of e "path(\"v0\", X)" in
  ignore (Server.Engine.submit e `Insert "edge(\"v121\", \"v122\")");
  ignore (Server.Engine.submit e `Remove "edge(\"v0\", \"v1\")");
  (match Server.Engine.commit_async e with
  | `Started _ -> ()
  | `Coalesced -> Alcotest.fail "nothing inflight yet: must start");
  (* probe repeatedly while the background domain mutates the live db *)
  let during = ref [] in
  for _ = 1 to 50 do
    during := facts_of e "path(\"v0\", X)" :: !during
  done;
  List.iter
    (fun (facts, epoch) ->
      check_int "epoch unchanged mid-flight" epoch_before epoch;
      check_bool "bit-identical result set" true (facts = before))
    !during;
  ignore (Server.Engine.await e);
  let after, epoch_after = facts_of e "path(\"v0\", X)" in
  check_int "next epoch published" (epoch_before + 1) epoch_after;
  check_bool "new snapshot reflects the deletion" true (after <> before);
  check_int "v0 lost its outgoing edge" 0 (List.length after)

(* ---- engine: query patterns ---- *)

let query_patterns () =
  let e =
    make_engine
      ~source:
        "edge(\"a\",\"b\"). edge(\"b\",\"a\"). edge(\"a\",\"a\").\n\
         path(X,Y) :- edge(X,Y).\n\
         path(X,Z) :- path(X,Y), edge(Y,Z).\n"
      ()
  in
  let count pattern = List.length (fst (facts_of e pattern)) in
  check_int "bare predicate matches all" 3 (count "edge");
  check_int "anonymous wildcards" 3 (count "edge(_, _)");
  check_int "repeated named var forces equality" 1 (count "edge(X, X)");
  check_int "constant narrows" 2 (count "edge(\"a\", X)");
  (match Server.Engine.query e "nosuch(\"a\")" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown predicate must error");
  match Server.Engine.query e "edge(\"a\")" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "arity mismatch must error"

(* ---- repl ---- *)

let repl_of engine = Server.Repl.create engine

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let repl_errors_keep_session () =
  let r = repl_of (make_engine ()) in
  let expect_err line =
    match Server.Repl.handle_line r line with
    | [ reply ], quit ->
      check_bool (line ^ " answers err") true (starts_with "err " reply);
      check_bool (line ^ " keeps the session") false quit
    | replies, _ ->
      Alcotest.failf "%s: expected one err line, got %d" line
        (List.length replies)
  in
  expect_err "bogus nonsense";
  expect_err "insert";
  expect_err "insert edge(\"a\"";
  expect_err "insert path(\"a\", \"z\")";
  expect_err "query nosuch(\"a\")";
  expect_err "commit now";
  (* after all that abuse the session still works end to end *)
  (match Server.Repl.handle_line r "insert edge(\"d\", \"e\")" with
  | [ reply ], false -> check_string "queued" "ok pending 1" reply
  | _ -> Alcotest.fail "valid insert should queue");
  (match Server.Repl.handle_line r "commit" with
  | [ reply ], false ->
    check_bool "commit ok line" true (starts_with "ok epoch 1 ops 1" reply)
  | _ -> Alcotest.fail "commit should publish");
  match Server.Repl.handle_line r "quit" with
  | replies, true ->
    check_string "clean goodbye" "ok bye" (List.nth replies (List.length replies - 1))
  | _, false -> Alcotest.fail "quit must end the session"

let repl_blank_and_comment_lines () =
  let r = repl_of (make_engine ()) in
  check_bool "blank line says nothing" true
    (Server.Repl.handle_line r "   " = ([], false));
  check_bool "comment line says nothing" true
    (Server.Repl.handle_line r "# a comment" = ([], false))

let repl_query_output () =
  let r = repl_of (make_engine ()) in
  match Server.Repl.handle_line r "query path(\"a\", X)" with
  | lines, false ->
    check_int "three facts + ok line" 4 (List.length lines);
    check_string "facts are terminated atoms" "path(\"a\", \"b\")."
      (List.hd lines);
    check_string "ok trailer counts and stamps" "ok 3 facts epoch 0"
      (List.nth lines 3)
  | _, true -> Alcotest.fail "query must not end the session"

(* ---- suite ---- *)

let () =
  Alcotest.run "server"
    [
      ( "protocol",
        [
          test `Quick "format/parse round trip" protocol_round_trip;
          test `Quick "whitespace handling" protocol_trims_and_splits;
          test `Quick "malformed lines rejected" protocol_rejects;
        ] );
      ( "engine",
        [
          test `Quick "submit validation" submit_validation;
          test `Quick "last-wins batch dedup" submit_last_wins;
          test `Quick "commits advance epochs" commit_advances_epochs;
          test `Quick "deletion maintains" deletion_maintains;
          test `Quick "async commits coalesce" async_coalesces;
          test `Quick "snapshot isolation mid-flight" snapshot_isolation;
          test `Quick "query patterns" query_patterns;
        ] );
      ( "repl",
        [
          test `Quick "errors keep the session alive" repl_errors_keep_session;
          test `Quick "blank and comment lines" repl_blank_and_comment_lines;
          test `Quick "query reply shape" repl_query_output;
        ] );
    ]
