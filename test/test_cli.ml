(* End-to-end tests of the dms command-line driver: each subcommand is
   run as a real subprocess against the built binary. *)

let test case name f = Alcotest.test_case name case f

let check_bool = Alcotest.(check bool)

(* resolve the built binary relative to this test executable, so the
   suite works both under `dune runtest` and `dune exec` *)
let dms =
  Filename.concat (Filename.dirname Sys.executable_name) "../bin/dms.exe"

let run_capture args =
  let cmd = Filename.quote_command dms args in
  let ic = Unix.open_process_in (cmd ^ " 2>&1") in
  let buf = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  (status, Buffer.contents buf)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec find i = i + nl <= hl && (String.sub haystack i nl = needle || find (i + 1)) in
  find 0

let expect_ok args needles =
  let status, out = run_capture args in
  check_bool (String.concat " " args ^ " exits 0") true (status = Unix.WEXITED 0);
  List.iter
    (fun needle ->
      if not (contains out needle) then
        Alcotest.failf "output of %s lacks %S:\n%s" (String.concat " " args) needle out)
    needles

let info_paper () = expect_ok [ "info"; "paper:5" ] [ "nodes=1719"; "levels=39" ]

let info_tight () = expect_ok [ "info"; "tight:10" ] [ "nodes=19" ]

let run_scheduler () =
  expect_ok [ "run"; "tight:12"; "-s"; "levelbased"; "--validate" ]
    [ "LevelBased"; "makespan" ]

let compare_schedulers () =
  expect_ok [ "compare"; "chain:50"; "-p"; "2" ]
    [ "LevelBased"; "LogicBlox"; "Hybrid"; "Clairvoyant" ]

let gen_and_reload () =
  let tmp = Filename.temp_file "cli" ".trace" in
  expect_ok
    [ "gen"; "--nodes"; "500"; "--edges"; "900"; "--levels"; "12"; "--initial"; "4";
      "--active"; "60"; "-o"; tmp ]
    [ "wrote"; "nodes=500" ];
  expect_ok [ "info"; tmp ] [ "nodes=500"; "edges=900" ];
  expect_ok [ "run"; tmp; "-s"; "hybrid"; "--validate" ] [ "makespan" ];
  Sys.remove tmp

let dot_export () =
  let tmp = Filename.temp_file "cli" ".dot" in
  expect_ok [ "dot"; "tight:6"; "-o"; tmp ] [ "wrote" ];
  let ic = open_in tmp in
  let first = input_line ic in
  close_in ic;
  Sys.remove tmp;
  check_bool "dot header" true (contains first "digraph")

let schedule_export () =
  let tmp = Filename.temp_file "cli" ".json" in
  expect_ok [ "schedule"; "tight:8"; "-s"; "hybrid"; "-o"; tmp ] [ "schedule written" ];
  let ic = open_in tmp in
  let first = input_line ic in
  close_in ic;
  Sys.remove tmp;
  check_bool "json array" true (String.length first > 0 && first.[0] = '[')

let datalog_session () =
  let tmp = Filename.temp_file "cli" ".dl" in
  let oc = open_out tmp in
  output_string oc
    {|edge("a","b"). edge("b","c").
      path(X,Y) :- edge(X,Y).
      path(X,Z) :- path(X,Y), edge(Y,Z).
      reach(X, cnt(Y)) :- path(X, Y).|};
  close_out oc;
  expect_ok
    [ "datalog"; tmp; "-q"; "reach"; "--add"; {|edge("c","d")|} ]
    [ "materialized"; "update changed"; {|reach("a", 3)|} ];
  Sys.remove tmp

let datalog_lint () =
  let tmp = Filename.temp_file "cli" ".dl" in
  let oc = open_out tmp in
  output_string oc
    {|edge("a","b").
      path(X,Y) :- edge(X,Y).
      odd(X) :- edge(X, Unused).|};
  close_out oc;
  expect_ok
    [ "datalog"; tmp; "--lint" ]
    [ "singleton-variable"; "Unused"; "rule 2 (odd)"; "materialized" ];
  (* a clean program says so (recursive TC: path is read back by the
     second rule, so the unused-idb-predicate lint stays quiet) *)
  let oc = open_out tmp in
  output_string oc
    {|edge("a","b"). path(X,Y) :- edge(X,Y). path(X,Z) :- path(X,Y), edge(Y,Z).|};
  close_out oc;
  expect_ok [ "datalog"; tmp; "--lint" ] [ "lint: clean" ];
  Sys.remove tmp

let write_program src =
  let tmp = Filename.temp_file "cli" ".dl" in
  let oc = open_out tmp in
  output_string oc src;
  close_out oc;
  tmp

let tc_src =
  {|edge("a","b"). edge("b","c").
    path(X,Y) :- edge(X,Y).
    path(X,Z) :- path(X,Y), edge(Y,Z).|}

let analyze_report () =
  let tmp = write_program tc_src in
  expect_ok [ "analyze"; tmp ]
    [ "strata: 1"; "advisor: counting"; "ownership: verified";
      "reads {edge path}"; "writes {path}"; "linear" ];
  Sys.remove tmp

let analyze_json_roundtrip () =
  let tmp = write_program tc_src in
  let status, out = run_capture [ "analyze"; tmp; "--json" ] in
  Sys.remove tmp;
  check_bool "analyze --json exits 0" true (status = Unix.WEXITED 0);
  let j = Obs.Json.parse out in
  let str k = Option.bind (Obs.Json.member k j) Obs.Json.to_str in
  check_bool "ownership verified" true (str "ownership" = Some "verified");
  check_bool "engine recorded" true (str "engine" = Some "compiled");
  match Option.bind (Obs.Json.member "comps" j) Obs.Json.to_list with
  | None -> Alcotest.fail "comps array missing"
  | Some comps ->
    check_bool "edge and path components" true (List.length comps = 2);
    let advice =
      List.filter_map
        (fun c ->
          match Option.bind (Obs.Json.member "extensional" c) Obs.Json.to_bool with
          | Some false -> Option.bind (Obs.Json.member "advice" c) Obs.Json.to_str
          | _ -> None)
        comps
    in
    check_bool "path advised counting" true (advice = [ "counting" ])

let analyze_rejects_bad_program () =
  let tmp = write_program {|p(X,Y) :- e(X).|} in
  let status, out = run_capture [ "analyze"; tmp ] in
  Sys.remove tmp;
  check_bool "analyze exits 1 on a bad program" true (status = Unix.WEXITED 1);
  check_bool "diagnostic printed" true (contains out "error")

(* scripted `serve --stdio` session over a real pipe pair: drive the
   line protocol end to end and require a clean exit *)
let serve_session ~extra_args ~script ~needles =
  let tmp = write_program tc_src in
  let cmd =
    Filename.quote_command dms ([ "serve"; tmp; "--stdio" ] @ extra_args)
    ^ " 2>/dev/null"
  in
  let ic, oc = Unix.open_process cmd in
  List.iter (fun line -> output_string oc (line ^ "\n")) script;
  flush oc;
  close_out oc;
  let buf = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let status = Unix.close_process (ic, oc) in
  Sys.remove tmp;
  let out = Buffer.contents buf in
  check_bool "serve exits 0" true (status = Unix.WEXITED 0);
  List.iter
    (fun needle ->
      if not (contains out needle) then
        Alcotest.failf "serve session output lacks %S:\n%s" needle out)
    needles;
  out

let serve_stdio_session () =
  let out =
    serve_session ~extra_args:[]
      ~script:
        [
          "query path(\"a\", X)";
          "insert edge(\"c\", \"d\")";
          "remove edge(\"a\", \"b\")";
          "bogus nonsense";
          "commit";
          "query path(\"b\", X)";
          "stats";
          "quit";
        ]
      ~needles:
        [
          "ok 2 facts epoch 0";
          "ok pending 1";
          "ok pending 2";
          "err unknown command \"bogus\"";
          "ok epoch 1 ops 2";
          "path(\"b\", \"d\").";
          "ok 2 facts epoch 1";
          "commits 1";
          "ok bye";
        ]
  in
  (* the update actually removed a's reachability: the old epoch-0
     answer must not resurface after the commit *)
  check_bool "epoch 1 stats line" true (contains out "ok epoch 1 facts")

let serve_stdio_async_session () =
  ignore
    (serve_session
       ~extra_args:[ "--async"; "--maint"; "counting" ]
       ~script:
         [
           "insert edge(\"c\", \"d\")";
           "commit";
           "insert edge(\"d\", \"e\")";
           "commit";
           "quit";
         ]
       ~needles:[ "ok commit running epoch 1"; "ok bye" ])

let unknown_scheduler_fails () =
  let status, out = run_capture [ "run"; "tight:5"; "-s"; "bogus" ] in
  check_bool "nonzero exit" true (status <> Unix.WEXITED 0);
  check_bool "mentions the name" true (contains out "bogus")

let bad_trace_fails () =
  let status, _ = run_capture [ "info"; "paper:99" ] in
  check_bool "nonzero exit" true (status <> Unix.WEXITED 0)

let () =
  Alcotest.run "cli"
    [
      ( "dms",
        [
          test `Quick "info on a paper trace" info_paper;
          test `Quick "info on a pathological trace" info_tight;
          test `Quick "run with validation" run_scheduler;
          test `Quick "compare with clairvoyant" compare_schedulers;
          test `Quick "gen / info / run round trip" gen_and_reload;
          test `Quick "dot export" dot_export;
          test `Quick "chrome trace export" schedule_export;
          test `Quick "datalog session with aggregate" datalog_session;
          test `Quick "datalog lint diagnostics" datalog_lint;
          test `Quick "analyze report" analyze_report;
          test `Quick "analyze --json round-trips" analyze_json_roundtrip;
          test `Quick "analyze rejects bad programs" analyze_rejects_bad_program;
          test `Quick "serve stdio session" serve_stdio_session;
          test `Quick "serve async stdio session" serve_stdio_async_session;
          test `Quick "unknown scheduler fails" unknown_scheduler_fails;
          test `Quick "bad trace spec fails" bad_trace_fails;
        ] );
    ]
