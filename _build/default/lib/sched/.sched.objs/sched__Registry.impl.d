lib/sched/registry.ml: Hybrid Level_based Logicblox Lookahead Printf Signal String
