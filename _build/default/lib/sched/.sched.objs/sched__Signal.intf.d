lib/sched/signal.mli: Dag Intf
