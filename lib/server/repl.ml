type t = { engine : Engine.t; async : bool }

let create ?(async = false) engine = { engine; async }

let commit_line ~tag (s : Engine.commit_stats) =
  Printf.sprintf "%s epoch %d ops %d changed %d in %.3f ms" tag s.epoch
    s.ops s.changed (1000.0 *. s.latency_s)

let notes stats = List.map (commit_line ~tag:"note") stats

let maint_name = function
  | Datalog.Incremental.Dred -> "dred"
  | Datalog.Incremental.Counting -> "counting"
  | Datalog.Incremental.Auto -> "auto"

let help_lines =
  [
    "insert FACT     queue a base-fact addition, e.g. insert edge(\"a\", \"b\")";
    "remove FACT     queue a base-fact deletion";
    "commit          run queued ops as one maintenance pass, publish next epoch";
    "query PATTERN   match the published snapshot, e.g. query path(\"a\", X)";
    "stats           one-line engine status";
    "help            this text";
    "quit            finish background work and end the session";
    "ok";
  ]

let exec t cmd =
  match (cmd : Protocol.command) with
  | Protocol.Insert text -> begin
    match Engine.submit t.engine `Insert text with
    | Ok () ->
      ([ Printf.sprintf "ok pending %d" (Engine.pending_ops t.engine) ], false)
    | Error m -> ([ "err " ^ m ], false)
  end
  | Protocol.Remove text -> begin
    match Engine.submit t.engine `Remove text with
    | Ok () ->
      ([ Printf.sprintf "ok pending %d" (Engine.pending_ops t.engine) ], false)
    | Error m -> ([ "err " ^ m ], false)
  end
  | Protocol.Commit ->
    if t.async then begin
      match Engine.commit_async t.engine with
      | `Started e -> ([ Printf.sprintf "ok commit running epoch %d" e ], false)
      | `Coalesced -> ([ "ok commit coalesced into next epoch" ], false)
    end
    else begin
      let stats = Engine.commit t.engine in
      match List.rev stats with
      | last :: earlier ->
        (List.rev_map (commit_line ~tag:"note") earlier
         @ [ commit_line ~tag:"ok" last ],
         false)
      | [] -> ([ "err commit published nothing" ], false)
    end
  | Protocol.Query text -> begin
    match Engine.query t.engine text with
    | Ok (facts, epoch) ->
      let lines =
        List.map
          (fun a -> Format.asprintf "%a." Datalog.Ast.pp_atom a)
          facts
      in
      ( lines
        @ [
            Printf.sprintf "ok %d fact%s epoch %d" (List.length facts)
              (if List.length facts = 1 then "" else "s")
              epoch;
          ],
        false )
    | Error m -> ([ "err " ^ m ], false)
  end
  | Protocol.Stats ->
    ( [
        Printf.sprintf
          "ok epoch %d facts %d pending %d commits %d inflight %b maint %s \
           domains %d shards %d"
          (Engine.epoch t.engine)
          (Engine.snapshot_facts t.engine)
          (Engine.pending_ops t.engine)
          (Engine.commits t.engine)
          (Engine.inflight t.engine)
          (maint_name (Engine.maint t.engine))
          (Engine.domains t.engine) (Engine.shards t.engine);
      ],
      false )
  | Protocol.Help -> (help_lines, false)
  | Protocol.Quit ->
    let leftover = Engine.await t.engine in
    (notes leftover @ [ "ok bye" ], true)

let handle_line t line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then ([], false)
  else begin
    (* surface finished background commits before the new reply *)
    let pending_notes = notes (Engine.drain t.engine) in
    let reply, quit =
      match Protocol.parse line with
      | Error m -> ([ "err " ^ m ], false)
      | Ok cmd -> begin
        try exec t cmd with
        | Failure m -> ([ "err " ^ m ], false)
        | Invalid_argument m -> ([ "err " ^ m ], false)
      end
    in
    (pending_notes @ reply, quit)
  end

let run_channels t ic oc =
  let quit = ref false in
  let said_quit = ref false in
  (try
     while not !quit do
       match In_channel.input_line ic with
       | None -> quit := true
       | Some line ->
         let replies, q = handle_line t line in
         List.iter
           (fun r ->
             Out_channel.output_string oc r;
             Out_channel.output_char oc '\n')
           replies;
         Out_channel.flush oc;
         if q then begin
           quit := true;
           said_quit := true
         end
     done
   with Sys_error _ -> ());
  (* EOF without quit: quiesce so the caller gets a settled engine *)
  ignore (Engine.await t.engine);
  !said_quit

let serve_socket t path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 8;
  let stop = ref false in
  while not !stop do
    let fd, _ = Unix.accept sock in
    let ic = Unix.in_channel_of_descr fd
    and oc = Unix.out_channel_of_descr fd in
    let said_quit = run_channels t ic oc in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    if said_quit then stop := true
  done;
  (try Unix.close sock with Unix.Unix_error _ -> ());
  try Unix.unlink path with Unix.Unix_error _ -> ()
