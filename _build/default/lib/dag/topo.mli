(** Topological ordering (Kahn's algorithm, iterative). *)

val sort : Graph.t -> int array option
(** A topological order of the nodes, or [None] if the graph has a
    cycle. Deterministic: among available nodes, smallest id first. *)

val sort_exn : Graph.t -> int array
(** @raise Invalid_argument on a cyclic graph. *)

val is_dag : Graph.t -> bool

val check_order : Graph.t -> int array -> bool
(** [check_order g order] verifies that [order] is a permutation of the
    nodes in which every edge goes forward. *)
