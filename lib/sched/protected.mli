(** Thread-safety adapter for scheduler instances.

    Every {!Intf.instance} in this library is single-threaded state; a
    multicore executor must serialize access to it. [Protected] is that
    serialization point, designed so the critical sections are few and
    short ("the scheduler lock protects the scheduler, nothing else"):

    - {!refill} pops up to a whole buffer of ready tasks in one lock
      acquisition ([next_ready] + [on_started] per task), so a worker
      pays one lock round-trip per batch, not per task;
    - {!complete} delivers a completed task's discovered activations
      and its [on_completed] in one critical section, preserving the
      protocol order (activations strictly before the parent's
      completion);
    - the adapter tracks [outstanding] — tasks released by the
      scheduler whose completion has not yet been processed — which is
      what lets the executor distinguish "no work ready {e yet}"
      ({!Pending}) from a genuine scheduler stall or termination
      ({!Drained}) without any global state freeze;
    - scheduler op counters are additionally attributed per worker:
      each critical section credits the delta of the instance's
      cumulative {!Intf.ops} to the calling worker, so contention
      analysis can see who drove the scheduler.

    The completion count is maintained here, incremented {e inside}
    the critical section after [on_completed]: together with the
    executor counting a task's activations before calling {!complete},
    this gives the invariant [completed = activated] iff every
    activated task has fully completed — the executor's lock-free
    termination test. *)

type t

(** Outcome of a {!refill} call. *)
type refill =
  | Got of int  (** that many tasks were written to the buffer prefix *)
  | Pending
      (** nothing ready, but released tasks are still in flight — their
          completions may unlock more work; wait *)
  | Drained
      (** nothing ready and nothing in flight: either every activated
          task has completed, or the scheduler has stalled (caller
          decides by comparing activation and completion counts) *)

val make : ?rings:Obs.Ring.t array -> workers:int -> Intf.factory -> Dag.Graph.t -> t
(** Runs the factory's precomputation. [workers] sizes the per-worker
    op-attribution table; worker ids passed below must be in
    [0, workers). [rings], when given (length >= [workers]), receives
    one span per critical section on the calling worker's ring —
    measured lock wait and hold, tagged refill/complete/activate — the
    empirically observed counterpart of the op-count model. *)

val name : t -> string

val activate : t -> wid:int -> Intf.task array -> unit
(** Deliver a batch of initial activations (one critical section). *)

val refill : t -> wid:int -> into:int array -> refill
(** Pop up to [Array.length into] safe tasks, delivering [on_started]
    for each under the same lock. *)

val complete_batch :
  t ->
  wid:int ->
  tasks:Intf.task array ->
  ntasks:int ->
  acts:Intf.task array ->
  counts:int array ->
  unit
(** [complete_batch t ~wid ~tasks ~ntasks ~acts ~counts] retires a
    worker's accumulated completions in one critical section.
    [tasks.(0 .. ntasks-1)] are the completed tasks in completion
    order; task [i]'s newly activated children are the next
    [counts.(i)] entries of the flattened [acts]. For each task in
    order: [on_activated] its children, then [on_completed] it — so the
    protocol order (activations strictly before the causing parent's
    completion) is preserved within and across batch entries. The
    [outstanding] and completion counters move once per batch, after
    every delivery, which keeps the termination invariant a fortiori.
    Arrays are unchecked hot-path buffers owned by the calling worker;
    prefixes must be within bounds. *)

val completed : t -> int
(** Number of {!complete} calls processed (atomic read; exact). *)

val ops : t -> Intf.ops
(** Aggregate scheduler op counters (the instance's own record). Only
    stable once all workers have joined. *)

val worker_ops : t -> Intf.ops array
(** Per-worker attribution of {!ops}, indexed by [wid]. Sums to {!ops}
    once all workers have joined. *)

val memory_words : t -> int
