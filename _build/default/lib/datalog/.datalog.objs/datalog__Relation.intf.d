lib/datalog/relation.mli:
