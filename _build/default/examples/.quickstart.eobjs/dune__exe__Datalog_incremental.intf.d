examples/datalog_incremental.mli:
