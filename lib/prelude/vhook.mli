(** Instrumentation vocabulary for {!Vatomic} (see vhook.ml header).

    Only the [analysis]-profile Vatomic implementation and the
    [Analysis] model checker use this; the default build never calls
    into it. *)

type kind =
  | Aread
  | Awrite
  | Aupdate
  | Pread
  | Pwrite
  | Racy_read

type info = {
  loc : int;
  kind : kind;
  futile : unit -> bool;
}

val no_futility : unit -> bool

val fresh_loc : unit -> int
(** Allocate one location id. *)

val fresh_locs : int -> int
(** [fresh_locs n] reserves [n] consecutive ids, returning the first. *)

val active : bool ref
(** When set, every instrumented operation calls [!hook] first. Flipped
    only by the model checker, around a single-domain run. *)

val hook : (info -> unit) ref

val note : int -> kind -> unit
(** [note loc kind] reports an operation if [!active]. *)

val note_cas : int -> (unit -> bool) -> unit
(** Report a CAS with its futility probe if [!active]. *)
