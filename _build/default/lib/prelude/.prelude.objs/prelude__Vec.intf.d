lib/prelude/vec.mli:
