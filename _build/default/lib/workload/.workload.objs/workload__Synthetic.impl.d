lib/workload/synthetic.ml: Array Dag Float Fun Hashtbl List Option Prelude Printf Queue Trace
