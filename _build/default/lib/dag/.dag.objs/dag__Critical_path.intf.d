lib/dag/critical_path.mli: Graph
