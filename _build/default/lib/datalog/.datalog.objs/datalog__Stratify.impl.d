lib/datalog/stratify.ml: Array Ast Dag Hashtbl List Prelude
