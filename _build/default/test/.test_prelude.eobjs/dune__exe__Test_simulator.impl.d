test/test_simulator.ml: Alcotest Array Dag Filename Float Format List Option Prelude QCheck QCheck_alcotest Result Sched Simulator String Sys Workload
