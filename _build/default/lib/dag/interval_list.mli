(** Interval-list encoding of transitive closure
    (Agrawal-Borgida-Jagadish [4], Nuutila [31]).

    Every node is assigned a postorder position along a DFS spanning
    forest; a node's descendant set is stored as a sorted list of
    disjoint, maximal intervals over these positions. Tree descendants
    form one contiguous interval; non-tree reachability adds further
    intervals inherited from successors.

    This is the precomputed structure of the production LogicBlox
    scheduler (paper Sections II-C, VI-B). Worst-case size is O(V^2)
    total interval entries; on the bushy DAGs seen in production it is
    usually near-linear. [total_intervals] exposes the realized size so
    the Meta scheduler (Theorem 10) can enforce its memory budget.

    To answer the scheduler's actual question — "is any *active* node an
    ancestor of u?" — build the encoding over the transposed DAG, so
    that [intervals t u] covers exactly the ancestors of [u], and keep
    the active set as a bitset indexed by [position]; then the query is
    a per-interval [Bitset.exists_in_range]. *)

type t

val build : Graph.t -> t
(** O(V + E + total interval size). @raise Invalid_argument on cycles. *)

val position : t -> int -> int
(** Postorder position of a node, in [0, V). A bijection. *)

val node_at : t -> int -> int
(** Inverse of [position]. *)

val intervals : t -> int -> (int * int) array
(** Sorted disjoint inclusive intervals of positions covering [u] and
    all of its descendants (in the graph the encoding was built on). *)

val is_descendant : t -> of_:int -> int -> bool
(** [is_descendant t ~of_:u v]: is [v] reachable from [u]? True when
    [u = v]. Binary search over [intervals t u]: O(log #intervals). *)

val interval_count : t -> int -> int

val range_words : t -> int -> int
(** Total bitset words covered by [intervals t u] — the cost of probing
    those intervals against an active-set bitset. Lets callers choose
    between interval-range probing and per-active-node membership
    checks, whichever is cheaper for the current active set. *)

val total_intervals : t -> int
(** Sum over nodes of interval counts — the memory footprint driver. *)

val memory_words : t -> int
(** Approximate heap words used by the encoding. *)
