lib/datalog/symbol.ml: Ast Hashtbl Prelude Printf
