examples/multicore_execution.mli:
