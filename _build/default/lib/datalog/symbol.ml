type t = {
  codes : (Ast.const, int) Hashtbl.t;
  consts : Ast.const Prelude.Vec.t;
}

let create () =
  { codes = Hashtbl.create 64; consts = Prelude.Vec.create ~dummy:(Ast.Int 0) () }

let intern t c =
  match Hashtbl.find_opt t.codes c with
  | Some code -> code
  | None ->
    let code = Prelude.Vec.length t.consts in
    Hashtbl.add t.codes c code;
    Prelude.Vec.push t.consts c;
    code

let const_of t code =
  if code < 0 || code >= Prelude.Vec.length t.consts then
    invalid_arg (Printf.sprintf "Symbol.const_of: unknown code %d" code);
  Prelude.Vec.get t.consts code

let count t = Prelude.Vec.length t.consts

let compare_codes t a b = Ast.compare_const (const_of t a) (const_of t b)
