type const = Sym of string | Int of int

type agg = Count | Sum | Min | Max

type term = Var of string | Const of const | Agg of agg * string

type cmp = Eq | Neq | Lt | Le | Gt | Ge

type atom = { pred : string; args : term list }

type literal = Pos of atom | Neg of atom | Cmp of cmp * term * term

type rule = { head : atom; body : literal list }

type program = rule list

let compare_const a b =
  match (a, b) with
  | Int x, Int y -> compare x y
  | Int _, Sym _ -> -1
  | Sym _, Int _ -> 1
  | Sym x, Sym y -> String.compare x y

let term_is_ground = function Var _ | Agg _ -> false | Const _ -> true

let atom_is_ground a = List.for_all term_is_ground a.args

let rule_is_fact r = r.body = [] && atom_is_ground r.head

let term_var = function Var v | Agg (_, v) -> Some v | Const _ -> None

let vars_of_atom a =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun t ->
      match term_var t with
      | Some v when not (Hashtbl.mem seen v) ->
        Hashtbl.add seen v ();
        Some v
      | Some _ | None -> None)
    a.args

let rule_is_aggregate r =
  List.exists (function Agg _ -> true | Var _ | Const _ -> false) r.head.args

let vars_of_term acc = function Var v -> v :: acc | Const _ | Agg _ -> acc

let range_restricted r =
  let positive = Hashtbl.create 16 in
  List.iter
    (function
      | Pos a -> List.iter (fun v -> Hashtbl.replace positive v ()) (vars_of_atom a)
      | Neg _ | Cmp _ -> ())
    r.body;
  let bound v = Hashtbl.mem positive v in
  let no_body_aggregates =
    List.for_all
      (function
        | Pos a | Neg a ->
          List.for_all (function Agg _ -> false | Var _ | Const _ -> true) a.args
        | Cmp (_, t1, t2) ->
          List.for_all (function Agg _ -> false | Var _ | Const _ -> true) [ t1; t2 ])
      r.body
  in
  let head_ok = List.for_all bound (vars_of_atom r.head) in
  let body_ok =
    List.for_all
      (function
        | Pos _ -> true
        | Neg a -> List.for_all bound (vars_of_atom a)
        | Cmp (_, t1, t2) -> List.for_all bound (vars_of_term (vars_of_term [] t1) t2))
      r.body
  in
  no_body_aggregates && head_ok && body_ok

let pp_const ppf = function
  | Sym s -> Format.fprintf ppf "%S" s
  | Int i -> Format.pp_print_int ppf i

let pp_agg ppf a =
  Format.pp_print_string ppf
    (match a with Count -> "cnt" | Sum -> "sum" | Min -> "min" | Max -> "max")

let pp_term ppf = function
  | Var v -> Format.pp_print_string ppf v
  | Const c -> pp_const ppf c
  | Agg (a, v) -> Format.fprintf ppf "%a(%s)" pp_agg a v

let pp_atom ppf a =
  Format.fprintf ppf "%s(%a)" a.pred
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_term)
    a.args

let cmp_symbol = function
  | Eq -> "="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let pp_literal ppf = function
  | Pos a -> pp_atom ppf a
  | Neg a -> Format.fprintf ppf "!%a" pp_atom a
  | Cmp (c, t1, t2) -> Format.fprintf ppf "%a %s %a" pp_term t1 (cmp_symbol c) pp_term t2

let pp_rule ppf r =
  if r.body = [] then Format.fprintf ppf "%a." pp_atom r.head
  else
    Format.fprintf ppf "%a :- %a." pp_atom r.head
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_literal)
      r.body

let pp_program ppf p =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp_rule ppf p
