(** Results of one simulated schedule. *)

type t = {
  scheduler : string;
  makespan : float;
      (** virtual completion time of the last task, scheduling overhead
          included — the quantity of Tables II and III *)
  sched_overhead : float;
      (** virtual time charged for scheduler decisions: ops x op_cost *)
  exec_time : float;  (** [makespan - sched_overhead] *)
  total_work : float;  (** the paper's [w]: work actually executed *)
  tasks_executed : int;
  tasks_activated : int;
  ops : Sched.Intf.ops;  (** final operation counters *)
  precompute_wallclock : float;  (** real seconds spent in [make] *)
  sched_wallclock : float;  (** real seconds inside scheduler callbacks *)
  memory_words : int;  (** scheduler footprint after the run *)
  utilization : float;  (** total_work / (makespan * procs) *)
  procs : int;
}

val pp : Format.formatter -> t -> unit

val pp_row : Format.formatter -> t -> unit
(** One-line tabular form. *)
