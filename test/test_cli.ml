(* End-to-end tests of the dms command-line driver: each subcommand is
   run as a real subprocess against the built binary. *)

let test case name f = Alcotest.test_case name case f

let check_bool = Alcotest.(check bool)

(* resolve the built binary relative to this test executable, so the
   suite works both under `dune runtest` and `dune exec` *)
let dms =
  Filename.concat (Filename.dirname Sys.executable_name) "../bin/dms.exe"

let run_capture args =
  let cmd = Filename.quote_command dms args in
  let ic = Unix.open_process_in (cmd ^ " 2>&1") in
  let buf = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  (status, Buffer.contents buf)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec find i = i + nl <= hl && (String.sub haystack i nl = needle || find (i + 1)) in
  find 0

let expect_ok args needles =
  let status, out = run_capture args in
  check_bool (String.concat " " args ^ " exits 0") true (status = Unix.WEXITED 0);
  List.iter
    (fun needle ->
      if not (contains out needle) then
        Alcotest.failf "output of %s lacks %S:\n%s" (String.concat " " args) needle out)
    needles

let info_paper () = expect_ok [ "info"; "paper:5" ] [ "nodes=1719"; "levels=39" ]

let info_tight () = expect_ok [ "info"; "tight:10" ] [ "nodes=19" ]

let run_scheduler () =
  expect_ok [ "run"; "tight:12"; "-s"; "levelbased"; "--validate" ]
    [ "LevelBased"; "makespan" ]

let compare_schedulers () =
  expect_ok [ "compare"; "chain:50"; "-p"; "2" ]
    [ "LevelBased"; "LogicBlox"; "Hybrid"; "Clairvoyant" ]

let gen_and_reload () =
  let tmp = Filename.temp_file "cli" ".trace" in
  expect_ok
    [ "gen"; "--nodes"; "500"; "--edges"; "900"; "--levels"; "12"; "--initial"; "4";
      "--active"; "60"; "-o"; tmp ]
    [ "wrote"; "nodes=500" ];
  expect_ok [ "info"; tmp ] [ "nodes=500"; "edges=900" ];
  expect_ok [ "run"; tmp; "-s"; "hybrid"; "--validate" ] [ "makespan" ];
  Sys.remove tmp

let dot_export () =
  let tmp = Filename.temp_file "cli" ".dot" in
  expect_ok [ "dot"; "tight:6"; "-o"; tmp ] [ "wrote" ];
  let ic = open_in tmp in
  let first = input_line ic in
  close_in ic;
  Sys.remove tmp;
  check_bool "dot header" true (contains first "digraph")

let schedule_export () =
  let tmp = Filename.temp_file "cli" ".json" in
  expect_ok [ "schedule"; "tight:8"; "-s"; "hybrid"; "-o"; tmp ] [ "schedule written" ];
  let ic = open_in tmp in
  let first = input_line ic in
  close_in ic;
  Sys.remove tmp;
  check_bool "json array" true (String.length first > 0 && first.[0] = '[')

let datalog_session () =
  let tmp = Filename.temp_file "cli" ".dl" in
  let oc = open_out tmp in
  output_string oc
    {|edge("a","b"). edge("b","c").
      path(X,Y) :- edge(X,Y).
      path(X,Z) :- path(X,Y), edge(Y,Z).
      reach(X, cnt(Y)) :- path(X, Y).|};
  close_out oc;
  expect_ok
    [ "datalog"; tmp; "-q"; "reach"; "--add"; {|edge("c","d")|} ]
    [ "materialized"; "update changed"; {|reach("a", 3)|} ];
  Sys.remove tmp

let datalog_lint () =
  let tmp = Filename.temp_file "cli" ".dl" in
  let oc = open_out tmp in
  output_string oc
    {|edge("a","b").
      path(X,Y) :- edge(X,Y).
      odd(X) :- edge(X, Unused).|};
  close_out oc;
  expect_ok
    [ "datalog"; tmp; "--lint" ]
    [ "singleton-variable"; "Unused"; "rule 2 (odd)"; "materialized" ];
  (* a clean program says so *)
  let oc = open_out tmp in
  output_string oc {|edge("a","b"). path(X,Y) :- edge(X,Y).|};
  close_out oc;
  expect_ok [ "datalog"; tmp; "--lint" ] [ "lint: clean" ];
  Sys.remove tmp

let unknown_scheduler_fails () =
  let status, out = run_capture [ "run"; "tight:5"; "-s"; "bogus" ] in
  check_bool "nonzero exit" true (status <> Unix.WEXITED 0);
  check_bool "mentions the name" true (contains out "bogus")

let bad_trace_fails () =
  let status, _ = run_capture [ "info"; "paper:99" ] in
  check_bool "nonzero exit" true (status <> Unix.WEXITED 0)

let () =
  Alcotest.run "cli"
    [
      ( "dms",
        [
          test `Quick "info on a paper trace" info_paper;
          test `Quick "info on a pathological trace" info_tight;
          test `Quick "run with validation" run_scheduler;
          test `Quick "compare with clairvoyant" compare_schedulers;
          test `Quick "gen / info / run round trip" gen_and_reload;
          test `Quick "dot export" dot_export;
          test `Quick "chrome trace export" schedule_export;
          test `Quick "datalog session with aggregate" datalog_session;
          test `Quick "datalog lint diagnostics" datalog_lint;
          test `Quick "unknown scheduler fails" unknown_scheduler_fails;
          test `Quick "bad trace spec fails" bad_trace_fails;
        ] );
    ]
