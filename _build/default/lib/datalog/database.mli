(** A Datalog database: named relations plus the constant table.

    Predicates spring into existence on first mention; arity is fixed at
    that point and enforced thereafter. *)

type t

val create : unit -> t

val symbols : t -> Symbol.t

val relation : t -> string -> arity:int -> Relation.t
(** Find-or-create. @raise Invalid_argument on an arity clash. *)

val find : t -> string -> Relation.t option

val predicates : t -> (string * Relation.t) list
(** Sorted by name. *)

val intern_atom : t -> Ast.atom -> Relation.tuple
(** Ground atom to tuple (registering its predicate).
    @raise Invalid_argument if the atom contains variables. *)

val add_fact : t -> Ast.atom -> bool
(** [true] iff new. *)

val remove_fact : t -> Ast.atom -> bool

val mem_fact : t -> Ast.atom -> bool

val tuple_to_atom : t -> string -> Relation.tuple -> Ast.atom

val copy : t -> t
(** Deep-copies relations; shares the symbol table (interning is
    append-only, so sharing is safe). *)

val total_tuples : t -> int

val pp : Format.formatter -> t -> unit
(** All facts, sorted — stable output for tests. *)
