(** Predicate dependency analysis and stratification.

    Builds the predicate dependency graph (edge [b -> h] when [b] occurs
    in the body of a rule for [h], marked negative when under negation),
    condenses its strongly connected components (each SCC is one
    mutually-recursive clique — one fixpoint task in the paper's DAG),
    and assigns strata so that negation never crosses into its own
    stratum. *)

type t = {
  predicates : string array;  (** index -> predicate name *)
  index_of : (string, int) Hashtbl.t;
  graph : Dag.Graph.t;  (** predicate dependency graph, may be cyclic *)
  negative : bool array;  (** per edge id: dependency under negation *)
  condensation : Dag.Scc.condensation;
  stratum_of_comp : int array;  (** component -> stratum *)
  stratum_count : int;
  edb : bool array;
      (** per predicate: extensional (never a rule head; facts only) *)
}

exception Unstratifiable of string
(** Raised when a predicate depends negatively on itself through a
    recursive cycle. The payload names one offending predicate. *)

val analyze : Ast.program -> t
(** @raise Unstratifiable when negation occurs inside an SCC. *)

val stratum : t -> string -> int
(** @raise Not_found for unknown predicates. *)

val predicates_by_stratum : t -> string list array

val scc_order : t -> int array
(** Component ids in a topological evaluation order (dependencies
    first), grouped by increasing stratum. *)

val rules_for_comp : t -> Ast.program -> int -> Ast.rule list
(** The rules whose head belongs to the given component. *)
