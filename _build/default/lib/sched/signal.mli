(** Brute-force signal propagation (paper, Section II-C).

    No precomputation. Every node — active or not — waits for a signal
    from each parent ("no change" or "new output"); a node with all
    signals in either becomes ready (if activated) or immediately
    forwards "no change" to its children. O(V + E) messages per update
    round regardless of how few nodes are active, which is exactly the
    weakness the paper contrasts LevelBased against. *)

val make : ?ops:Intf.ops -> Dag.Graph.t -> Intf.instance

val factory : Intf.factory
