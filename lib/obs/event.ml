(* Event kinds and their field conventions. One ring record is four
   flat ints: (kind, t_ns, a, b). Spans carry their own start so no
   begin/end pairing pass is needed at export time:

   - task:           t = finish, a = task id,       b = start
   - steal:          t = end,    a = tasks stolen,  b = start
   - park:           t = wake,   a = 0,             b = park start
   - wake (instant): t = now,    a = wakes requested
   - sched-*:        t = release, a = lock wait ns, b = acquire stamp
     (full span incl. the wait starts at b - a)
   - dred-*:         t = phase end, a = component,  b = phase start
   - shard:          t = end,    a = shard id,      b = start
   - cnt-propagate/backward/forward:
                     t = phase end, a = component,  b = phase start
   - cnt-o1-hit / cnt-full-probe (instant):
                     t = now,    a = suspect count, b = component
   - srv-admit (instant):
                     t = now,    a = ops admitted,  b = target epoch
   - srv-commit:     t = publish, a = epoch produced, b = commit start
   - srv-epoch:      t = epoch end, a = epoch id,   b = epoch start *)

type kind = int

let task = 0
let steal = 1
let park = 2
let wake = 3
let sched_refill = 4
let sched_complete = 5
let sched_activate = 6
let dred_delete = 7
let dred_rederive = 8
let dred_insert = 9
let shard = 10
let cnt_propagate = 11
let cnt_backward = 12
let cnt_forward = 13
let cnt_o1_hit = 14
let cnt_full_probe = 15
let srv_admit = 16
let srv_commit = 17
let srv_epoch = 18

let count = 19

let names =
  [|
    "task";
    "steal";
    "park";
    "wake";
    "sched-refill";
    "sched-complete";
    "sched-activate";
    "dred-delete";
    "dred-rederive";
    "dred-insert";
    "shard";
    "cnt-propagate";
    "cnt-backward";
    "cnt-forward";
    "cnt-o1-hit";
    "cnt-full-probe";
    "srv-admit";
    "srv-commit";
    "srv-epoch";
  |]

let name k = if k >= 0 && k < count then names.(k) else "unknown"

let of_name s =
  let rec go i = if i >= count then None else if names.(i) = s then Some i else go (i + 1) in
  go 0

let is_instant k = k = wake || k = cnt_o1_hit || k = cnt_full_probe || k = srv_admit

let is_sched k = k = sched_refill || k = sched_complete || k = sched_activate

let is_dred k = k = dred_delete || k = dred_rederive || k = dred_insert

let is_cnt k = k = cnt_propagate || k = cnt_backward || k = cnt_forward

let is_srv k = k = srv_admit || k = srv_commit || k = srv_epoch

(* Start of the full span in ns-since-epoch; for scheduler sections
   the recorded stamp [b] is taken after the lock was acquired and [a]
   is the time spent waiting for it, so the section began at b - a. *)
let span_start_ns k ~a ~b = if is_sched k then b - a else b
