(* A bounded FIFO ring of task ids guarded by a tiny test-and-set
   spinlock. The owner pushes refilled batches and pops from the front;
   idle peers steal the front half. Every operation is a handful of
   loads and stores, and contention is rare (a thief only shows up when
   it has nothing else to do), so a spinlock beats both a Mutex (futex
   round-trip) and a lock-free deque (fences on the owner's fast path)
   at this scale.

   All shared state goes through {!Prelude.Vatomic} so the analysis
   build can model-check owner/thief interleavings (the steal-vs-pop
   scenario in Analysis.Scenarios runs this exact code) and its
   happens-before checker can verify that every head/tail access is
   ordered by the lock. [slots] stays a raw array: every slot access is
   guarded by the same lock as the head/tail accesses next to it, so a
   broken lock surfaces as a head/tail race first. *)

module Vatomic = Prelude.Vatomic

type t = {
  lock : int Vatomic.t;
  slots : int array;
  mask : int;
  head : int Vatomic.Plain.t; (* pop end; slots in [head, tail) are live *)
  tail : int Vatomic.Plain.t;
}

let rec next_pow2 n k = if k >= n then k else next_pow2 n (k * 2)

let create capacity =
  if capacity < 1 then invalid_arg "Wbuf.create: capacity < 1";
  let cap = next_pow2 capacity 1 in
  {
    lock = Vatomic.make 0;
    slots = Array.make cap 0;
    mask = cap - 1;
    head = Vatomic.Plain.make 0;
    tail = Vatomic.Plain.make 0;
  }

let capacity t = t.mask + 1

(* Lock acquire: the successful CAS is an acquire — it orders every
   head/tail/slot load in the critical section after the previous
   holder's release store below. (OCaml atomics are SC, which is
   stronger than the acquire this needs.) *)
let acquire t =
  while not (Vatomic.compare_and_set t.lock 0 1) do
    Domain.cpu_relax ()
  done

(* Lock release: the store is a release — every plain write to
   head/tail/slots inside the critical section becomes visible to the
   next acquirer before the lock reads 0. *)
let release t = Vatomic.set t.lock 0

(* Unsynchronized occupancy probe for would-be thieves: reads both
   cursors without the lock, so the result may be torn or stale. Fine
   for its only use — deciding whether locking the victim is worth it;
   any decision taken on a stale value is re-validated under the lock
   by the steal itself. The racy reads are declared as such so the
   analysis-build race detector does not flag them. *)
let length t = Vatomic.Plain.get_racy t.tail - Vatomic.Plain.get_racy t.head

(* Owner or lock holder only. *)
let len_locked t = Vatomic.Plain.get t.tail - Vatomic.Plain.get t.head

(* Owner only. Returns how many of [tasks.(off .. off+len-1)] were
   accepted (all of them unless the ring is full). *)
let push_batch t tasks off len =
  acquire t;
  let live = len_locked t in
  let room = capacity t - live in
  let n = min len room in
  let tail = Vatomic.Plain.get t.tail in
  for i = 0 to n - 1 do
    t.slots.((tail + i) land t.mask) <- tasks.(off + i)
  done;
  Vatomic.Plain.set t.tail (tail + n);
  (* loud capacity check in dev builds: a cursor bug (overflow past
     capacity, or head overtaking tail) would otherwise corrupt the
     ring silently by aliasing live slots *)
  assert (
    let l = len_locked t in
    l >= 0 && l <= capacity t);
  release t;
  n

(* Returns -1 when empty: the pop is the owner's per-task fast path,
   and an option would allocate on every success. Task ids are node
   ids, always >= 0. *)
let pop t =
  acquire t;
  let head = Vatomic.Plain.get t.head in
  let r =
    if head = Vatomic.Plain.get t.tail then -1
    else begin
      let u = t.slots.(head land t.mask) in
      Vatomic.Plain.set t.head (head + 1);
      u
    end
  in
  release t;
  r

(* Owner only. Pop up to [max] tasks from the front into
   [tasks.(0 .. n-1)], returning [n]. One lock round-trip amortized
   over the whole batch; keep [max] modest so most of the ring stays
   visible to thieves. *)
let pop_batch t tasks max =
  acquire t;
  let n = min max (len_locked t) in
  let head = Vatomic.Plain.get t.head in
  for i = 0 to n - 1 do
    tasks.(i) <- t.slots.((head + i) land t.mask)
  done;
  Vatomic.Plain.set t.head (head + n);
  release t;
  n

(* Steal the front half (at least one) of [victim] into [tasks],
   returning the count. Called by a thief; [tasks] must have room for
   [capacity victim] entries. Locks only the victim — the thief's own
   ring is touched by its owner afterwards, so no lock ordering issue
   can arise. *)
let steal_into victim tasks =
  acquire victim;
  let len = len_locked victim in
  let n = if len = 0 then 0 else (len + 1) / 2 in
  let head = Vatomic.Plain.get victim.head in
  for i = 0 to n - 1 do
    tasks.(i) <- victim.slots.((head + i) land victim.mask)
  done;
  Vatomic.Plain.set victim.head (head + n);
  release victim;
  n
