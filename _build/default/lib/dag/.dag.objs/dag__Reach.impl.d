lib/dag/reach.ml: Array Graph Prelude Queue
