let write_shape oc = function
  | Trace.Unit -> output_string oc "unit"
  | Trace.Seq w -> Printf.fprintf oc "seq %.17g" w
  | Trace.Par w -> Printf.fprintf oc "par %.17g" w
  | Trace.Stages { width; length; chip } ->
    Printf.fprintf oc "stages %d %d %.17g" width length chip

let write oc (t : Trace.t) =
  Printf.fprintf oc "trace %s\n" t.name;
  Printf.fprintf oc "nodes %d\n" (Dag.Graph.node_count t.graph);
  Array.iteri
    (fun u k ->
      match (k, t.shape.(u)) with
      | Trace.Task, Trace.Unit -> ()
      | _ ->
        Printf.fprintf oc "node %d %c " u (match k with Trace.Task -> 'T' | Trace.Predicate -> 'P');
        write_shape oc t.shape.(u);
        output_char oc '\n')
    t.kind;
  Dag.Graph.iter_edges t.graph (fun ~src ~dst ~eid ->
      Printf.fprintf oc "edge %d %d %d\n" src dst
        (if t.edge_changed.(eid) then 1 else 0));
  if Array.length t.initial > 0 then begin
    output_string oc "initial";
    Array.iter (fun u -> Printf.fprintf oc " %d" u) t.initial;
    output_char oc '\n'
  end

let to_file path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write oc t)

type parse_state = {
  mutable name : string;
  mutable nodes : int;
  node_lines : (int * Trace.node_kind * Trace.shape) Prelude.Vec.t;
  edges : (int * int) Prelude.Vec.t;
  changed : bool Prelude.Vec.t;
  initial : int Prelude.Vec.t;
}

let fail lineno fmt =
  Printf.ksprintf (fun s -> failwith (Printf.sprintf "trace parse: line %d: %s" lineno s)) fmt

let parse_shape lineno = function
  | [ "unit" ] -> Trace.Unit
  | [ "seq"; w ] -> (
    match float_of_string_opt w with
    | Some w -> Trace.Seq w
    | None -> fail lineno "bad seq work %S" w)
  | [ "par"; w ] -> (
    match float_of_string_opt w with
    | Some w -> Trace.Par w
    | None -> fail lineno "bad par work %S" w)
  | [ "stages"; a; b; c ] -> (
    match (int_of_string_opt a, int_of_string_opt b, float_of_string_opt c) with
    | Some width, Some length, Some chip -> Trace.Stages { width; length; chip }
    | _ -> fail lineno "bad stages spec")
  | toks -> fail lineno "bad shape %S" (String.concat " " toks)

let split_ws s =
  String.split_on_char ' ' s |> List.filter (fun x -> x <> "")

let parse_line st lineno line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  match split_ws line with
  | [] -> ()
  | "trace" :: rest -> st.name <- String.concat " " rest
  | [ "nodes"; n ] -> (
    match int_of_string_opt n with
    | Some n when n >= 0 -> st.nodes <- n
    | _ -> fail lineno "bad node count %S" n)
  | "node" :: id :: kind :: shape_toks -> (
    match (int_of_string_opt id, kind) with
    | Some id, "T" -> Prelude.Vec.push st.node_lines (id, Trace.Task, parse_shape lineno shape_toks)
    | Some id, "P" ->
      Prelude.Vec.push st.node_lines (id, Trace.Predicate, parse_shape lineno shape_toks)
    | _ -> fail lineno "bad node line")
  | [ "edge"; u; v; c ] -> (
    match (int_of_string_opt u, int_of_string_opt v, c) with
    | Some u, Some v, "0" ->
      Prelude.Vec.push st.edges (u, v);
      Prelude.Vec.push st.changed false
    | Some u, Some v, "1" ->
      Prelude.Vec.push st.edges (u, v);
      Prelude.Vec.push st.changed true
    | _ -> fail lineno "bad edge line")
  | "initial" :: ids ->
    List.iter
      (fun s ->
        match int_of_string_opt s with
        | Some u -> Prelude.Vec.push st.initial u
        | None -> fail lineno "bad initial id %S" s)
      ids
  | tok :: _ -> fail lineno "unknown record %S" tok

let finish st =
  if st.nodes < 0 then failwith "trace parse: missing 'nodes' record";
  let kind = Array.make st.nodes Trace.Task in
  let shape = Array.make st.nodes Trace.Unit in
  Prelude.Vec.iter
    (fun (id, k, s) ->
      if id < 0 || id >= st.nodes then
        failwith (Printf.sprintf "trace parse: node id %d out of range" id);
      kind.(id) <- k;
      shape.(id) <- s)
    st.node_lines;
  let graph = Dag.Graph.of_edges ~nodes:st.nodes (Prelude.Vec.to_array st.edges) in
  let initial = Prelude.Vec.to_array st.initial in
  Array.sort compare initial;
  Trace.create ~name:st.name ~graph ~kind ~shape ~initial
    ~edge_changed:(Prelude.Vec.to_array st.changed)

let read ?name ic =
  let st =
    {
      name = Option.value name ~default:"unnamed";
      nodes = -1;
      node_lines = Prelude.Vec.create ~dummy:(0, Trace.Task, Trace.Unit) ();
      edges = Prelude.Vec.create ~dummy:(0, 0) ();
      changed = Prelude.Vec.create ~dummy:false ();
      initial = Prelude.Vec.create ~dummy:0 ();
    }
  in
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       parse_line st !lineno line
     done
   with End_of_file -> ());
  finish st

let of_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read ~name:(Filename.basename path) ic)

let of_string ?name s =
  let st =
    {
      name = Option.value name ~default:"unnamed";
      nodes = -1;
      node_lines = Prelude.Vec.create ~dummy:(0, Trace.Task, Trace.Unit) ();
      edges = Prelude.Vec.create ~dummy:(0, 0) ();
      changed = Prelude.Vec.create ~dummy:false ();
      initial = Prelude.Vec.create ~dummy:0 ();
    }
  in
  List.iteri (fun i line -> parse_line st (i + 1) line) (String.split_on_char '\n' s);
  finish st
