(** Growable arrays.

    A [Vec.t] is a mutable array that grows amortized O(1) on [push].
    Because OCaml arrays cannot be partially initialized for arbitrary
    element types, creation requires a [dummy] element used to fill
    unused capacity; the dummy is never observable through the API. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [create ~dummy ()] is an empty vector. [capacity] pre-allocates. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** [get v i] is the [i]th element. @raise Invalid_argument if out of bounds. *)

val set : 'a t -> int -> 'a -> unit

val push : 'a t -> 'a -> unit
(** Append an element, growing the backing store if needed. *)

val pop : 'a t -> 'a option
(** Remove and return the last element, or [None] if empty. *)

val pop_exn : 'a t -> 'a

val top : 'a t -> 'a option

val clear : 'a t -> unit
(** Logical clear; capacity is retained, old slots reset to the dummy. *)

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val exists : ('a -> bool) -> 'a t -> bool

val to_array : 'a t -> 'a array

val to_list : 'a t -> 'a list

val of_array : dummy:'a -> 'a array -> 'a t

val swap_remove : 'a t -> int -> 'a
(** [swap_remove v i] removes index [i] in O(1) by swapping in the last
    element; returns the removed element. Order is not preserved. *)
