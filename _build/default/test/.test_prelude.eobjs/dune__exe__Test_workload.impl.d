test/test_workload.ml: Alcotest Array Buffer Dag Filename Float List Prelude Printf QCheck QCheck_alcotest String Sys Workload
