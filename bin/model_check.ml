(* Model-checking driver for the executor's concurrency protocols.

   Meaningful only in the [analysis] dune profile, where Vatomic is
   instrumented — use `make model-check` / `make model-check-smoke`,
   which pass `--profile analysis` to dune. Exit status: 0 all checks
   passed, 1 a check failed, 2 not instrumented / usage error.

   The run is a self-test in both directions: safe scenarios must come
   up clean (no violation, no race) under exhaustive bounded
   exploration, and each deliberately broken sibling scenario must
   yield a counterexample — if the checker stops finding those, the
   checker itself has regressed. *)

let say fmt = Format.printf (fmt ^^ "@.")

type mode = Full | Smoke | Random

let usage () =
  prerr_endline
    "usage: model_check [--smoke | --random] [--seed N] [--bound N]\n\
    \       [--scenario NAME] [--replay NAME SCHEDULE] [--list]";
  exit 2

let () =
  let mode = ref Full in
  let seed = ref 1 in
  let bound = ref (-1) in
  let only = ref None in
  let replay = ref None in
  let args = Array.to_list Sys.argv in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
      mode := Smoke;
      parse rest
    | "--random" :: rest ->
      mode := Random;
      parse rest
    | "--seed" :: n :: rest ->
      seed := int_of_string n;
      parse rest
    | "--bound" :: n :: rest ->
      bound := int_of_string n;
      parse rest
    | "--scenario" :: n :: rest ->
      only := Some n;
      parse rest
    | "--replay" :: name :: sched :: rest ->
      replay := Some (name, sched);
      parse rest
    | "--list" :: _ ->
      List.iter
        (fun (s, e) ->
          Printf.printf "%-32s %s\n" s.Analysis.Mc.name
            (match e with Analysis.Scenarios.Safe -> "safe" | Buggy -> "buggy"))
        Analysis.Scenarios.all;
      exit 0
    | a :: _ ->
      Printf.eprintf "model_check: unknown argument %s\n" a;
      usage ()
  in
  parse (List.tl args);
  if not Prelude.Vatomic.instrumented then begin
    prerr_endline
      "model_check: Vatomic is not instrumented in this build profile.\n\
       Interleavings cannot be controlled, so results would be meaningless.\n\
       Run via `make model-check` or `dune exec --profile analysis bin/model_check.exe`.";
    exit 2
  end;
  let failures = ref 0 in
  let report_violation v =
    say "  VIOLATION [%a] %s" Analysis.Mc.pp_violation_kind v.Analysis.Mc.vkind
      v.Analysis.Mc.message;
    say "  schedule: %s" v.Analysis.Mc.schedule;
    say "  replay:   model_check --replay <scenario> %s" v.Analysis.Mc.schedule
  in
  (match !replay with
  | Some (name, sched) ->
    let s = Analysis.Scenarios.find name in
    (match Analysis.Mc.replay s sched with
    | None -> say "replay of %s on %S: clean final state" name sched
    | Some v ->
      say "replay of %s on %S:" name sched;
      report_violation v);
    exit 0
  | None -> ());
  let scenarios =
    match !only with
    | Some n -> [ (Analysis.Scenarios.find n, Analysis.Scenarios.Safe) ]
    | None -> Analysis.Scenarios.all
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (s, expect) ->
      let name = s.Analysis.Mc.name in
      let bounded b ~max_execs =
        if !bound >= 0 then Analysis.Mc.explore ~preemption_bound:!bound ~max_execs s
        else Analysis.Mc.explore ~preemption_bound:b ~max_execs s
      in
      (* Unbounded + sleep sets (exhaustive up to trace equivalence)
         and bounded without them (every schedule with <= b
         preemptions) prune differently and are each sound; the full
         check runs both and keeps the first violation. *)
      let both b ~max_execs =
        let o1 = Analysis.Mc.explore ~max_execs s in
        if o1.Analysis.Mc.violation <> None then o1
        else
          let o2 = bounded b ~max_execs in
          o2.Analysis.Mc.stats.transitions <-
            o2.Analysis.Mc.stats.transitions + o1.Analysis.Mc.stats.transitions;
          o2.Analysis.Mc.stats.executions <-
            o2.Analysis.Mc.stats.executions + o1.Analysis.Mc.stats.executions;
          o2.Analysis.Mc.stats.cut_sleep <- o1.Analysis.Mc.stats.cut_sleep;
          o2
      in
      let outcome =
        match !mode with
        | Full -> both 3 ~max_execs:1_000_000
        | Smoke -> both 2 ~max_execs:100_000
        | Random -> Analysis.Mc.random_walk ~seed:!seed ~walks:500 s
      in
      let ok =
        match (expect, outcome.Analysis.Mc.violation) with
        | Analysis.Scenarios.Safe, None -> true
        | Analysis.Scenarios.Safe, Some _ -> false
        | Buggy, Some _ -> true
        (* random walks may legitimately miss a bug; exploration must not *)
        | Buggy, None -> !mode = Random
      in
      say "%-32s %s  %a"
        name
        (if ok then
           match expect with
           | Analysis.Scenarios.Safe -> "ok (no violation)"
           | Buggy -> (
             match outcome.Analysis.Mc.violation with
             | Some _ -> "ok (counterexample found, as expected)"
             | None -> "ok (random walks missed the known bug; explore finds it)")
         else "FAILED")
        Analysis.Mc.pp_stats outcome.Analysis.Mc.stats;
      (match outcome.Analysis.Mc.violation with
      | Some v when (not ok) || expect = Analysis.Scenarios.Buggy -> report_violation v
      | _ -> ());
      if not ok then incr failures)
    scenarios;
  say "model_check: %d scenario(s), %d failure(s), %.1fs" (List.length scenarios)
    !failures
    (Unix.gettimeofday () -. t0);
  exit (if !failures = 0 then 0 else 1)
