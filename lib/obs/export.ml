(* Chrome trace_event writer (and reader, for [dms trace] and the
   round-trip tests). One pid, one tid per worker ring; spans as "X"
   complete events (ts + dur in microseconds), wakes as thread-scoped
   "i" instants, worker names as "M" metadata. The object form —
   {"traceEvents": [...], ...} — loads in chrome://tracing and
   Perfetto. The event kind always travels in "cat" and the payload in
   args.v, so a parsed file maps losslessly back onto ring records. *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let us ns = float_of_int ns /. 1e3

let write ?task_label oc tr =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{ \"traceEvents\": [\n";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_string buf ",\n"
  in
  sep ();
  Buffer.add_string buf
    "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"args\": \
     {\"name\": \"incremental maintenance\"}}";
  let n = Trace.domains tr in
  for w = 0 to n - 1 do
    sep ();
    Printf.bprintf buf
      "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": %d, \"args\": \
       {\"name\": \"worker %d\"}}"
      w w
  done;
  for w = 0 to n - 1 do
    Ring.iter (Trace.ring tr w) (fun ~kind ~t_ns ~a ~b ->
        sep ();
        if Event.is_instant kind then
          Printf.bprintf buf
            "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"i\", \"s\": \"t\", \
             \"pid\": 1, \"tid\": %d, \"ts\": %.3f, \"args\": {\"v\": %d}}"
            (Event.name kind) (Event.name kind) w (us t_ns) a
        else begin
          let t0 = Event.span_start_ns kind ~a ~b in
          let name =
            if kind = Event.shard then "shard " ^ string_of_int a
            else
              match task_label with
              | Some label when kind = Event.task -> escape (label a)
              | Some label when Event.is_dred kind || Event.is_cnt kind ->
                escape (Event.name kind ^ " " ^ label a)
              | _ -> Event.name kind
          in
          Printf.bprintf buf
            "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", \"pid\": 1, \
             \"tid\": %d, \"ts\": %.3f, \"dur\": %.3f, \"args\": {\"v\": %d}}"
            name (Event.name kind) w (us t0)
            (us (max 0 (t_ns - t0)))
            a
        end)
  done;
  Buffer.add_string buf "\n], \"displayTimeUnit\": \"ms\",\n\"otherData\": { \"domains\": ";
  Printf.bprintf buf "%d, \"dropped\": [" n;
  for w = 0 to n - 1 do
    if w > 0 then Buffer.add_string buf ", ";
    Printf.bprintf buf "%d" (Ring.dropped (Trace.ring tr w))
  done;
  Buffer.add_string buf "] } }\n";
  Buffer.output_buffer oc buf

let to_file ?task_label path tr =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> write ?task_label oc tr)

(* ---- reading back ------------------------------------------------ *)

let events_of_json j =
  let evs =
    match Json.member "traceEvents" j with
    | Some (Json.Array l) -> l
    | _ -> raise (Json.Parse_error "no traceEvents array")
  in
  List.filter_map
    (fun e ->
      let str k = Option.bind (Json.member k e) Json.to_str in
      let num k = Option.bind (Json.member k e) Json.to_float in
      let kind =
        match Option.bind (str "cat") Event.of_name with
        | Some k -> Some k
        | None -> Option.bind (str "name") Event.of_name
      in
      match (str "ph", kind, num "ts") with
      | Some "X", Some kind, Some ts ->
        let dur = Option.value (num "dur") ~default:0.0 in
        let wid =
          Option.value (Option.bind (Json.member "tid" e) Json.to_int) ~default:0
        in
        let arg =
          Option.value
            (Option.bind (Json.member "args" e) (fun a ->
                 Option.bind (Json.member "v" a) Json.to_int))
            ~default:0
        in
        let t0_ns = int_of_float (ts *. 1e3) in
        Some
          {
            Summary.wid;
            kind;
            t0_ns;
            t1_ns = t0_ns + int_of_float (dur *. 1e3);
            arg;
          }
      | Some "i", Some kind, Some ts ->
        let wid =
          Option.value (Option.bind (Json.member "tid" e) Json.to_int) ~default:0
        in
        let arg =
          Option.value
            (Option.bind (Json.member "args" e) (fun a ->
                 Option.bind (Json.member "v" a) Json.to_int))
            ~default:0
        in
        let t = int_of_float (ts *. 1e3) in
        Some { Summary.wid; kind; t0_ns = t; t1_ns = t; arg }
      | _ -> None)
    evs

let dropped_of_json j =
  match
    Option.bind (Json.member "otherData" j) (fun o ->
        Option.bind (Json.member "dropped" o) Json.to_list)
  with
  | Some l -> Some (Array.of_list (List.map (fun v -> Option.value (Json.to_int v) ~default:0) l))
  | None -> None

let summary_of_json j =
  let events = events_of_json j in
  let domains =
    List.fold_left (fun acc (e : Summary.event) -> max acc (e.Summary.wid + 1)) 1 events
  in
  Summary.of_events ~domains ?dropped:(dropped_of_json j) events
