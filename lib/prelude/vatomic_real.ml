(* Vatomic, production implementation.

   This file becomes [vatomic.ml] in every build profile except
   [analysis] (see the copy rules in dune). It must add *zero* cost
   over using [Stdlib.Atomic] / [Atomic_int_array] directly: atomics
   are re-exported primitives (the [include] keeps their [external]
   status, so call sites compile to the same instructions), the int
   array is a module alias onto the C-stub implementation, and the
   plain cells are one-field records whose accessors are trivially
   inlined field loads/stores.

   The [analysis] profile swaps in [vatomic_virtual.ml], which routes
   every operation through {!Vhook} so the model checker can schedule
   interleavings deterministically. Both files must keep structurally
   identical interfaces; `make model-check` builds the virtual one, so
   drift is caught by CI. *)

include Stdlib.Atomic

let instrumented = false

(* Plain shared cells. In the real build this is just a [ref] with a
   different name: the point of the type is that the analysis build can
   observe these accesses and feed them to the happens-before race
   detector, so any mutable location shared between domains should
   prefer [Plain.t] over a bare [ref] / mutable field. *)
module Plain = struct
  type 'a t = { mutable v : 'a }

  let[@inline] make v = { v }

  let[@inline] get t = t.v

  let[@inline] set t v = t.v <- v

  (* Deliberately unsynchronized approximate read (e.g. probing a
     steal victim's occupancy without taking its lock). Same plain
     load here; the analysis build exempts it from race reporting. *)
  let[@inline] get_racy t = t.v
end

module Int_array = Atomic_int_array
