test/test_integration.ml: Alcotest Dag Datalog Filename Incr_sched List Sched Simulator Sys Workload
