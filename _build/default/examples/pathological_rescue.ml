(* The rescue story of Section VI: on adversarial instances the
   LogicBlox scheduler melts down — quadratic interval-list memory,
   cubic-ish time hunting for ready work — while the hybrid scheme stays
   within a whisker of plain LevelBased. (While implementing the hybrid,
   the authors found a synthetic instance where it beat production
   LogicBlox by 100x, which led LogicBlox to fix their scheduler.)

   Two instances:
   - a fully-active deep chain: every completion forces the LogicBlox
     scheduler to rescan its whole active queue;
   - dense random bipartite layers: ancestor sets fragment into Theta(w)
     intervals per node, so the precomputed structure alone grows
     quadratically.

   Run with: dune exec examples/pathological_rescue.exe *)

let banner title = Format.printf "@.=== %s ===@." title

let show trace scheds =
  Format.printf "%a@." Workload.Trace.pp_stats (Workload.Trace.stats trace);
  List.iter
    (fun m -> Format.printf "  %a@." Incr_sched.pp_result_row m)
    (Incr_sched.compare ~procs:8 ~scheds trace)

let () =
  banner "Broom (spine 5,000 + fan 5,000, fan blocked on the whole spine)";
  show
    (Workload.Pathological.broom ~spine:5_000 ~fan:5_000)
    [ "levelbased"; "logicblox"; "hybrid" ];
  Format.printf
    "@.The fan is active from the start but unready until the spine@.\
     drains, so the LogicBlox scheduler rescans ~5,000 blocked tasks@.\
     after every spine completion — Theta(spine x fan) wasted ancestor@.\
     queries. LevelBased never looks at a task above the current level,@.\
     and the hybrid tracks LevelBased because the shared ready queue@.\
     never runs dry long enough to trigger a scan.@.";
  banner "Interval-list blowup (dense bipartite layers)";
  List.iter
    (fun width ->
      let trace =
        Workload.Pathological.interval_blowup ~width ~layers:4 ~density:0.5
          ~seed:99
      in
      let lb = Incr_sched.schedule ~sched:"levelbased" trace in
      let lbx = Incr_sched.schedule ~sched:"logicblox" trace in
      Format.printf
        "  width %4d: LogicBlox memory %9d words (LevelBased %7d), makespan %8.2f vs %8.2f@."
        width lbx.Simulator.Metrics.memory_words lb.Simulator.Metrics.memory_words
        lbx.Simulator.Metrics.makespan lb.Simulator.Metrics.makespan)
    [ 50; 100; 200; 400 ];
  Format.printf
    "@.Doubling the width quadruples the LogicBlox footprint — the O(V^2)@.\
     worst case of Section II-C — while LevelBased stays at O(V) words@.\
     (Theorem 2).@."
