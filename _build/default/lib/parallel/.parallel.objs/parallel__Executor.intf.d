lib/parallel/executor.mli: Sched Stdlib Workload
