type t = {
  pos : int array; (* node -> postorder position *)
  inv : int array; (* position -> node *)
  ivs : (int * int) array array; (* node -> sorted disjoint intervals *)
  words : int array; (* node -> bitset words spanned by its intervals *)
}

(* Iterative DFS over the spanning forest rooted at the in-degree-0
   nodes, assigning postorder positions and the contiguous tree interval
   [lo(u), pos(u)] covering u's tree descendants. *)
let dfs_postorder g =
  let n = Graph.node_count g in
  let pos = Array.make n (-1) in
  let lo = Array.make n (-1) in
  let counter = ref 0 in
  let node_stack = Prelude.Vec.create ~dummy:0 () in
  let iter_stack = Prelude.Vec.create ~dummy:[||] () in
  let idx_stack = Prelude.Vec.create ~dummy:0 () in
  let visited = Array.make n false in
  let visit root =
    if not visited.(root) then begin
      visited.(root) <- true;
      lo.(root) <- !counter;
      Prelude.Vec.push node_stack root;
      Prelude.Vec.push iter_stack (Graph.succ g root);
      Prelude.Vec.push idx_stack 0;
      while not (Prelude.Vec.is_empty node_stack) do
        let u = Prelude.Vec.get node_stack (Prelude.Vec.length node_stack - 1) in
        let children = Prelude.Vec.get iter_stack (Prelude.Vec.length iter_stack - 1) in
        let k = Prelude.Vec.get idx_stack (Prelude.Vec.length idx_stack - 1) in
        if k < Array.length children then begin
          Prelude.Vec.set idx_stack (Prelude.Vec.length idx_stack - 1) (k + 1);
          let v = children.(k) in
          if not visited.(v) then begin
            visited.(v) <- true;
            lo.(v) <- !counter;
            Prelude.Vec.push node_stack v;
            Prelude.Vec.push iter_stack (Graph.succ g v);
            Prelude.Vec.push idx_stack 0
          end
        end
        else begin
          ignore (Prelude.Vec.pop_exn node_stack);
          ignore (Prelude.Vec.pop_exn iter_stack);
          ignore (Prelude.Vec.pop_exn idx_stack);
          pos.(u) <- !counter;
          incr counter
        end
      done
    end
  in
  Array.iter visit (Graph.sources g);
  (* A DAG is fully covered from its sources; anything unvisited means a
     cycle (no in-degree-0 entry point into it). *)
  if !counter <> n then invalid_arg "Interval_list.build: graph has a cycle";
  (pos, lo)

(* Merge already-sorted-by-lo interval runs, coalescing overlap and
   adjacency ([a,b] + [b+1,c] = [a,c] is exact since positions are dense). *)
let merge_sorted (acc : (int * int) list) : (int * int) array =
  match acc with
  | [] -> [||]
  | _ ->
    let arr = Array.of_list acc in
    Array.sort (fun (a, _) (b, _) -> compare a b) arr;
    let out = Prelude.Vec.create ~dummy:(0, 0) () in
    let cur_lo = ref (fst arr.(0)) and cur_hi = ref (snd arr.(0)) in
    for i = 1 to Array.length arr - 1 do
      let l, h = arr.(i) in
      if l <= !cur_hi + 1 then begin
        if h > !cur_hi then cur_hi := h
      end
      else begin
        Prelude.Vec.push out (!cur_lo, !cur_hi);
        cur_lo := l;
        cur_hi := h
      end
    done;
    Prelude.Vec.push out (!cur_lo, !cur_hi);
    Prelude.Vec.to_array out

let build g =
  let n = Graph.node_count g in
  let pos, lo = dfs_postorder g in
  let inv = Array.make n 0 in
  Array.iteri (fun u p -> inv.(p) <- u) pos;
  let ivs = Array.make n [||] in
  let order = Topo.sort_exn g in
  (* reverse topological: successors are finalized before u *)
  for i = n - 1 downto 0 do
    let u = order.(i) in
    let acc = ref [ (lo.(u), pos.(u)) ] in
    Graph.iter_succ g u (fun ~dst ~eid:_ ->
        Array.iter (fun iv -> acc := iv :: !acc) ivs.(dst));
    ivs.(u) <- merge_sorted !acc
  done;
  let word_bits = Sys.int_size in
  let words =
    Array.map
      (Array.fold_left (fun acc (lo, hi) -> acc + ((hi - lo) / word_bits) + 1) 0)
      ivs
  in
  { pos; inv; ivs; words }

let position t u = t.pos.(u)

let node_at t p = t.inv.(p)

let intervals t u = t.ivs.(u)

let is_descendant t ~of_ v =
  let p = t.pos.(v) in
  let ivs = t.ivs.(of_) in
  (* binary search: find the interval with the greatest lo <= p *)
  let rec search a b =
    if a > b then false
    else begin
      let mid = (a + b) / 2 in
      let l, h = ivs.(mid) in
      if p < l then search a (mid - 1)
      else if p > h then search (mid + 1) b
      else true
    end
  in
  search 0 (Array.length ivs - 1)

let interval_count t u = Array.length t.ivs.(u)

let range_words t u = t.words.(u)

let total_intervals t =
  Array.fold_left (fun acc a -> acc + Array.length a) 0 t.ivs

let memory_words t =
  (* pos + inv + per-node array headers + 3 words per boxed (int*int) *)
  (2 * Array.length t.pos) + Array.length t.ivs + (3 * total_intervals t)
