lib/simulator/trace_export.ml: Array Engine Fun Printf
