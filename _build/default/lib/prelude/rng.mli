(** Deterministic pseudo-random numbers (splitmix64).

    All workload generation goes through this module so that every trace
    in the benchmark suite is reproducible from a fixed seed, independent
    of the OCaml stdlib [Random] state. *)

type t

val create : int -> t
(** [create seed] is a generator seeded deterministically from [seed]. *)

val split : t -> t
(** An independent generator derived from (and advancing) [t]. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val float : t -> float
(** Uniform in [0, 1). *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). @raise Invalid_argument if
    [bound <= 0]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is true with probability [p]. *)

val uniform : t -> lo:float -> hi:float -> float

val gaussian : t -> mu:float -> sigma:float -> float
(** Box-Muller transform. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** exp of a gaussian; the heavy-tailed task-duration distribution. *)

val exponential : t -> rate:float -> float

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates. *)

val sample_without_replacement : t -> k:int -> n:int -> int array
(** [k] distinct values from [0, n), in random order. O(n) time/space. *)
