lib/sched/hybrid.mli: Dag Intf
