examples/multicore_execution.ml: Array Buffer Datalog Domain Format Incr_sched List Parallel Prelude Printf Sched Simulator Workload
