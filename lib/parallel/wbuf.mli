(** Per-worker bounded ready-buffer with stealing.

    Each executor worker owns one ring; it refills it in batches from
    the scheduler (one lock round-trip per batch) and drains it without
    touching the scheduler lock at all. Idle workers steal the front
    half of a peer's ring before falling back to the scheduler.

    All operations take the ring's private test-and-set spinlock for a
    few instructions; the ring is safe for one owner plus any number of
    thieves. FIFO order is preserved (schedulers release tasks in their
    preferred order; the buffer should not invert it), but note that
    any set of concurrently released tasks is mutually safe to run in
    any order — safety never depends on buffer order. *)

type t

val create : int -> t
(** [create capacity] rounds the capacity up to a power of two. *)

val capacity : t -> int

val length : t -> int
(** Racy outside the lock; exact enough for heuristics. *)

val push_batch : t -> int array -> int -> int -> int
(** [push_batch t tasks off len] appends [tasks.(off .. off+len-1)],
    returning how many fit. Owner only. *)

val pop : t -> int
(** Pop the oldest entry, or [-1] if the ring is empty (task ids are
    node ids, always non-negative; the sentinel keeps the owner's
    per-task fast path allocation-free). Owner only. *)

val pop_batch : t -> int array -> int -> int
(** [pop_batch t tasks max] pops up to [max] of the oldest entries
    into [tasks.(0 .. n-1)], returning [n] — one lock round-trip for
    the whole batch. Owner only. *)

val steal_into : t -> int array -> int
(** [steal_into victim scratch] transfers the oldest half (at least
    one if nonempty) of [victim] into [scratch], returning the count.
    [scratch] must hold [capacity victim] entries. *)
