test/test_sched.ml: Alcotest Array Dag Format List Option Printf QCheck QCheck_alcotest Sched Simulator String Workload
