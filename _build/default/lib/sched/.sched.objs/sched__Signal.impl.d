lib/sched/signal.ml: Array Dag Intf Prelude Queue
