type view = {
  mem : string -> Relation.tuple -> bool;
  iter_matching : string -> col:int -> value:int -> (Relation.tuple -> unit) -> unit;
  iter : string -> (Relation.tuple -> unit) -> unit;
}

let view_of_db db =
  {
    mem =
      (fun pred tup ->
        match Database.find db pred with
        | None -> false
        | Some r -> Relation.mem r tup);
    iter_matching =
      (fun pred ~col ~value f ->
        match Database.find db pred with
        | None -> ()
        | Some r -> Relation.iter_matching r ~col ~value f);
    iter =
      (fun pred f ->
        match Database.find db pred with None -> () | Some r -> Relation.iter f r);
  }

(* Environments are (string * int) assoc lists: variable bindings are
   tiny (a handful of variables), so assoc lists win over hashing. *)
let resolve_term ~symbols env = function
  | Ast.Const c -> Some (Symbol.intern symbols c)
  | Ast.Var v -> List.assoc_opt v env
  | Ast.Agg _ -> invalid_arg "Matcher: aggregate term outside a rule head"

(* Unify an atom's argument list against a concrete tuple. *)
let unify ~symbols env (args : Ast.term list) (tup : Relation.tuple) =
  let rec go env i = function
    | [] -> Some env
    | Ast.Const c :: rest ->
      if Symbol.intern symbols c = tup.(i) then go env (i + 1) rest else None
    | Ast.Var v :: rest -> (
      match List.assoc_opt v env with
      | Some code -> if code = tup.(i) then go env (i + 1) rest else None
      | None -> go ((v, tup.(i)) :: env) (i + 1) rest)
    | Ast.Agg _ :: _ -> invalid_arg "Matcher: aggregate term in a body atom"
  in
  if Array.length tup <> List.length args then None else go env 0 args

let ground_atom ~symbols env (a : Ast.atom) =
  let args =
    List.map
      (fun t ->
        match resolve_term ~symbols env t with
        | Some code -> code
        | None ->
          invalid_arg
            (Printf.sprintf "Matcher: unbound variable in %s (not range-restricted?)"
               a.Ast.pred))
      a.Ast.args
  in
  Array.of_list args

let compare_ok ~symbols op a b =
  let c = Symbol.compare_codes symbols a b in
  match op with
  | Ast.Eq -> c = 0
  | Ast.Neq -> c <> 0
  | Ast.Lt -> c < 0
  | Ast.Le -> c <= 0
  | Ast.Gt -> c > 0
  | Ast.Ge -> c >= 0

(* Enumerate matches of a positive atom under [env], using an index
   probe when some argument is already bound. *)
let match_positive ~symbols ~view ~work env (a : Ast.atom) k =
  (* fully ground under [env]? then the atom is a point lookup, not an
     enumeration — [mem] answers in O(1) where an index bucket would be
     scanned (and, below, materialized) in bucket-size time. Goal-
     directed probes from the counting engine hit this path on every
     membership check, so it is hot there. *)
  let rec all_bound acc = function
    | [] -> Some (List.rev acc)
    | t :: rest -> (
      match resolve_term ~symbols env t with
      | Some code -> all_bound (code :: acc) rest
      | None -> None)
  in
  match all_bound [] a.Ast.args with
  | Some codes ->
    incr work;
    if view.mem a.Ast.pred (Array.of_list codes) then k env
  | None -> (
    let bound_col =
      let rec go i = function
        | [] -> None
        | t :: rest -> (
          match resolve_term ~symbols env t with
          | Some code -> Some (i, code)
          | None -> go (i + 1) rest)
      in
      go 0 a.Ast.args
    in
    let try_tuple tup =
      incr work;
      match unify ~symbols env a.Ast.args tup with Some env' -> k env' | None -> ()
    in
    match bound_col with
    | Some (col, value) ->
      (* Materialize the bucket before unifying, as the pre-compilation
         [Relation.find] did. This interpreter is the reference oracle for
         differential testing: it must not share the compiled path's
         live-bucket iteration semantics, or a mutation-during-iteration
         bug would make both engines fail identically and pass the
         differential net. The allocation is fine off the hot path. *)
      let matches = ref [] in
      view.iter_matching a.Ast.pred ~col ~value (fun t -> matches := t :: !matches);
      List.iter try_tuple !matches
    | None -> view.iter a.Ast.pred try_tuple)

let eval_body ~symbols ~view ?delta ?(env = []) ~work ~on_env (body : Ast.literal list)
    =
  let body = Array.of_list body in
  let rec step i env =
    if i >= Array.length body then on_env env
    else begin
      match body.(i) with
      | Ast.Pos a -> (
        match delta with
        | Some (di, d) when di = i ->
          Relation.iter
            (fun tup ->
              incr work;
              match unify ~symbols env a.Ast.args tup with
              | Some env' -> step (i + 1) env'
              | None -> ())
            d
        | Some _ | None ->
          match_positive ~symbols ~view ~work env a (fun env' -> step (i + 1) env'))
      | Ast.Neg a ->
        incr work;
        if not (view.mem a.Ast.pred (ground_atom ~symbols env a)) then step (i + 1) env
      | Ast.Cmp (op, t1, t2) ->
        incr work;
        let v1 =
          match resolve_term ~symbols env t1 with Some v -> v | None -> assert false
        in
        let v2 =
          match resolve_term ~symbols env t2 with Some v -> v | None -> assert false
        in
        if compare_ok ~symbols op v1 v2 then step (i + 1) env
    end
  in
  (match delta with
  | Some (di, _) -> (
    match body.(di) with
    | Ast.Pos _ -> ()
    | Ast.Neg _ | Ast.Cmp _ -> invalid_arg "Matcher.eval_rule: delta literal must be positive")
  | None -> ());
  step 0 env

let eval_rule ~symbols ~view ?delta ~work ~on_derived (rule : Ast.rule) =
  eval_body ~symbols ~view ?delta ~work rule.Ast.body
    ~on_env:(fun env -> on_derived (ground_atom ~symbols env rule.Ast.head))

let register db program =
  let reg (a : Ast.atom) =
    ignore (Database.relation db a.Ast.pred ~arity:(List.length a.Ast.args))
  in
  List.iter
    (fun (r : Ast.rule) ->
      reg r.Ast.head;
      List.iter
        (function Ast.Pos a | Ast.Neg a -> reg a | Ast.Cmp _ -> ())
        r.Ast.body)
    program
