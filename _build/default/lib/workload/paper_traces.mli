(** Reconstructions of the eleven LogicBlox job traces of Table I.

    Traces #1-#10 are proprietary production traces and #11 is the
    authors' synthetic trace (announced for release but never located);
    all eleven are reconstructed with {!Synthetic.generate} to match
    every published structural statistic exactly (nodes, edges, levels,
    initial tasks) and the active-job count as closely as the
    activation-closure calibration permits.

    Task durations are lognormal, rescaled so the critical path of the
    active graph (or [w/8] for the wide shallow traces, whichever is
    larger) matches the published execution time — the paper's makespan
    with its reported scheduling overhead subtracted. See DESIGN.md for
    the substitution argument and EXPERIMENTS.md for the
    paper-vs-measured comparison. *)

type spec = {
  id : int;  (** 1..11, the paper's job-trace number *)
  nodes : int;
  edges : int;
  initial_tasks : int;
  active_jobs : int;
  levels : int;
  target_exec : float;
      (** published execution seconds used for duration calibration *)
  paper_makespan_logicblox : float option;
  paper_overhead_logicblox : float option;
  paper_makespan_levelbased : float option;
  paper_overhead_levelbased : float option;
  paper_makespan_hybrid : float option;
  paper_overhead_hybrid : float option;
  paper_lbl : (int * float) list;
      (** Table II LBL(k) makespans, for traces #1-#5 *)
}

val specs : spec array
(** All eleven specs, index [i] = trace #(i+1). *)

val spec : int -> spec
(** [spec id] for id in 1..11. *)

val processors : int
(** The paper's simulation used eight processors. *)

val generate : int -> Trace.t
(** [generate id] builds the reconstruction of job trace [id] (1..11),
    structurally matched and duration-calibrated. Deterministic. *)
