lib/dag/interval_list.mli: Graph
