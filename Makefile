.PHONY: all build test bench bench-smoke clean

all: build

build:
	dune build @all

# OCAMLRUNPARAM=b: backtraces from any executor failure inside the
# stress matrix (test/test_parallel.ml runs up to 8 domains per case)
test:
	OCAMLRUNPARAM=b dune runtest

bench:
	dune exec bench/main.exe

# tiny traces through the full dispatch matrix (both executors, all
# domain counts, Executor.check everywhere); seconds, writes no JSON
bench-smoke:
	dune exec bench/main.exe -- dispatch-smoke

clean:
	dune clean
