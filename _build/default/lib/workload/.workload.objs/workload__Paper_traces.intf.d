lib/workload/paper_traces.mli: Trace
