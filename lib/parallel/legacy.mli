(** The seed's big-lock executor, retained as a benchmark baseline.

    Serializes [next_ready], status transitions, activation
    propagation and log appends through one global mutex, and wakes
    every waiting worker with [Condition.broadcast] on each
    completion. Protocol and result are identical to {!Executor} (the
    [worker_ops] attribution and [steals] counter are zero — this
    executor has neither). Exists so [bench/main.exe -- dispatch] can
    measure the coordination cost the sharded executor removes; new
    code should use {!Executor.run}. *)

val run :
  ?domains:int ->
  ?work_unit:float ->
  sched:Sched.Intf.factory ->
  Workload.Trace.t ->
  Executor.result
