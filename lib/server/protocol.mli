(** The [dms serve] line protocol.

    One command per line, Soufflé-style:
    {v
    insert edge("a", "b")
    remove edge("b", "c")
    commit
    query path("a", X)
    stats
    help
    quit
    v}

    Payloads (the fact or query pattern) are kept as raw atom text
    here; parsing them as Datalog happens at admission ({!Engine}), so
    the protocol layer round-trips any payload verbatim and a payload
    syntax error is an ordinary [err] reply, never a session killer.

    Replies are lines too: a command produces zero or more data lines
    (query results, [note] lines reporting background commits)
    followed by exactly one terminator line starting with [ok] or
    [err]. *)

type command =
  | Insert of string  (** raw ground-atom text *)
  | Remove of string  (** raw ground-atom text *)
  | Commit
  | Query of string  (** raw pattern-atom text, variables allowed *)
  | Stats
  | Help
  | Quit

val parse : string -> (command, string) result
(** Parse one client line. Keywords are lowercase; payloads are
    trimmed. Blank lines and [#] comments are the caller's business
    ({!Repl} skips them before parsing). The error string is a
    human-readable reason suitable for an [err] reply. *)

val format : command -> string
(** The canonical client line for a command; [parse (format c) = Ok c]
    for every [c] whose payload is trimmed and non-empty. *)
