(** Bottom-up materialization: stratified semi-naive evaluation.

    Components of the predicate dependency graph are evaluated in
    stratum-respecting topological order; each recursive component runs
    a semi-naive fixpoint (rules re-fired only with a delta-restricted
    body literal). This mirrors the materialization whose task DAG the
    paper schedules: one task per component. *)

type comp_stats = {
  comp : int;  (** component id in the {!Stratify.t} condensation *)
  rounds : int;  (** fixpoint iterations (1 for non-recursive) *)
  derived : int;  (** new tuples added *)
  work : int;  (** tuples examined — the work proxy for {!To_trace} *)
}

val run :
  ?engine:Plan.engine ->
  ?lint:bool ->
  Database.t ->
  Ast.program ->
  Stratify.t * comp_stats list
(** Materialize every derived predicate into [db]. Facts in the program
    are inserted first. Returns the dependency analysis (reusable) and
    per-component statistics in evaluation order. [engine] (default
    {!Plan.Compiled}) selects compiled plans or the interpretive
    oracle; both produce identical databases. [lint] (default off)
    first checks range restriction with {!Lint} — useful for programs
    assembled directly as [Ast] values, which bypass the parser's gate.
    @raise Lint.Failed with named-variable diagnostics when [lint] and
    the program is not range-restricted.
    @raise Stratify.Unstratifiable on negative recursion. *)

val run_naive : Database.t -> Ast.program -> unit
(** Reference implementation: stratum-at-a-time naive iteration to
    fixpoint. Quadratically slower; used to property-test [run]. *)

val databases_agree : Database.t -> Database.t -> (unit, string) result
(** Same predicates with identical tuple sets. *)
