(* Quickstart: build a small computation DAG by hand, dirty two source
   tasks, and watch every scheduler order the recomputation.

   The DAG (levels left to right, '*' marks changed outputs):

     a* --> c --> e
     b* --> d --> e      a,b are base predicates; e joins c and d.
        \-> f            f depends on b but b's change does not reach it.

   Run with: dune exec examples/quickstart.exe *)

let build_trace () =
  let b = Dag.Graph.Builder.create ~nodes:6 () in
  let a = 0 and bb = 1 and c = 2 and d = 3 and e = 4 and f = 5 in
  let e_ac = Dag.Graph.Builder.add_edge b a c in
  let e_bd = Dag.Graph.Builder.add_edge b bb d in
  let e_bf = Dag.Graph.Builder.add_edge b bb f in
  let e_ce = Dag.Graph.Builder.add_edge b c e in
  let e_de = Dag.Graph.Builder.add_edge b d e in
  let graph = Dag.Graph.Builder.build b in
  let edge_changed = Array.make (Dag.Graph.edge_count graph) false in
  (* a and b rerun; their outputs change except along b -> f *)
  List.iter (fun eid -> edge_changed.(eid) <- true) [ e_ac; e_bd; e_ce; e_de ];
  ignore e_bf;
  Workload.Trace.create ~name:"quickstart" ~graph
    ~kind:(Array.make 6 Workload.Trace.Task)
    ~shape:[| Seq 1.0; Seq 2.0; Seq 3.0; Seq 1.5; Seq 1.0; Seq 9.0 |]
    ~initial:[| a; bb |] ~edge_changed

let () =
  let trace = build_trace () in
  Format.printf "Trace: %a@.@." Workload.Trace.pp_stats (Workload.Trace.stats trace);
  (* f is not activated even though its ancestor b reran: the paper's
     central point — the active graph H is a sparse, dynamically
     revealed subgraph of G. *)
  let active = Workload.Trace.active_set trace in
  Format.printf "Active set: %s@.@."
    (String.concat ", "
       (List.map string_of_int (Prelude.Bitset.to_list active)));
  Format.printf "Scheduling on 2 processors:@.";
  let results =
    Incr_sched.compare ~procs:2
      ~scheds:[ "levelbased"; "lbl:3"; "logicblox"; "signal"; "hybrid" ]
      trace
  in
  List.iter (fun m -> Format.printf "  %a@." Incr_sched.pp_result_row m) results;
  let opt = Incr_sched.clairvoyant ~procs:2 trace in
  Format.printf "  %a@." Incr_sched.pp_result_row opt;
  Format.printf "@.The makespan bound of Lemma 5: w/P + L = %.1f@."
    ((Workload.Trace.total_active_work trace /. 2.0)
    +. float_of_int (Workload.Trace.stats trace).Workload.Trace.levels)
