(** Name-based scheduler lookup for the CLI and benches.

    Recognized names:
    - ["levelbased"] (alias ["lb"])
    - ["lbl:<k>"] (alias ["lookahead:<k>"]), e.g. ["lbl:15"]
    - ["logicblox"]
    - ["signal"]
    - ["hybrid"], or ["hybrid:<batch>"] with an explicit co-scheduler
      scan batch (see {!Hybrid.make_batched})

    The clairvoyant scheduler is not listed: it needs the change oracle
    and is constructed explicitly where used. *)

val find : string -> Intf.factory option

val find_exn : string -> Intf.factory
(** @raise Invalid_argument on an unknown name. *)

val names : string list
(** Canonical example names, for help text. *)
