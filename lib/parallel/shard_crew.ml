(* A crew of [shards - 1] long-lived worker domains executing one job
   per shard with a completion barrier. All coordination goes through
   one mutex + two condition variables (job posted / job drained):
   acquire-release on the mutex gives the happens-before edges that
   make the jobs' plain per-shard buffer writes visible to the
   coordinator at the barrier, and vice versa for the next round's
   inputs. Workers are keyed by shard index, so shard [s] always runs
   on the same domain — per-shard plan scratch never migrates. *)

type t = {
  nshards : int;
  m : Mutex.t;
  posted : Condition.t;  (* a new job generation is available *)
  drained : Condition.t;  (* all workers finished the current job *)
  mutable gen : int;  (* job generation counter *)
  mutable job : (int -> unit) option;  (* job of the current generation *)
  mutable remaining : int;  (* workers still running the current job *)
  mutable failure : exn option;  (* first worker exception of the job *)
  mutable stopping : bool;
  mutable workers : unit Domain.t array;
  entry : Mutex.t;  (* serializes concurrent [run] callers *)
}

let worker t s =
  let last = ref 0 in
  let rec loop () =
    Mutex.lock t.m;
    while (not t.stopping) && t.gen = !last do
      Condition.wait t.posted t.m
    done;
    if t.stopping then Mutex.unlock t.m
    else begin
      last := t.gen;
      let job = match t.job with Some j -> j | None -> assert false in
      Mutex.unlock t.m;
      let failed = match job s with () -> None | exception e -> Some e in
      Mutex.lock t.m;
      (match failed with
      | Some e when t.failure = None -> t.failure <- Some e
      | Some _ | None -> ());
      t.remaining <- t.remaining - 1;
      if t.remaining = 0 then Condition.broadcast t.drained;
      Mutex.unlock t.m;
      loop ()
    end
  in
  loop ()

let create ~shards =
  if shards < 1 then invalid_arg "Shard_crew.create: shards < 1";
  let t =
    {
      nshards = shards;
      m = Mutex.create ();
      posted = Condition.create ();
      drained = Condition.create ();
      gen = 0;
      job = None;
      remaining = 0;
      failure = None;
      stopping = false;
      workers = [||];
      entry = Mutex.create ();
    }
  in
  t.workers <- Array.init (shards - 1) (fun i -> Domain.spawn (fun () -> worker t (i + 1)));
  t

let shards t = t.nshards

let run t job =
  Mutex.lock t.entry;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.entry) @@ fun () ->
  if t.nshards = 1 then job 0
  else begin
    Mutex.lock t.m;
    if t.stopping then begin
      Mutex.unlock t.m;
      invalid_arg "Shard_crew.run: crew is shut down"
    end;
    t.job <- Some job;
    t.remaining <- t.nshards - 1;
    t.failure <- None;
    t.gen <- t.gen + 1;
    Condition.broadcast t.posted;
    Mutex.unlock t.m;
    (* shard 0 runs on the caller; even if it raises, the barrier must
       still drain the workers before control leaves this call *)
    let mine = match job 0 with () -> None | exception e -> Some e in
    Mutex.lock t.m;
    while t.remaining > 0 do
      Condition.wait t.drained t.m
    done;
    t.job <- None;
    let theirs = t.failure in
    t.failure <- None;
    Mutex.unlock t.m;
    match (mine, theirs) with
    | Some e, _ -> raise e
    | None, Some e -> raise e
    | None, None -> ()
  end

let shutdown t =
  Mutex.lock t.m;
  if t.stopping then Mutex.unlock t.m
  else begin
    t.stopping <- true;
    Condition.broadcast t.posted;
    Mutex.unlock t.m;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end
