(** Materialized relations: sets of interned tuples with lazy per-column
    hash indexes for join probing. *)

type tuple = int array

type t

val create : arity:int -> t

val arity : t -> int

val cardinality : t -> int

val mem : t -> tuple -> bool

val add : t -> tuple -> bool
(** [true] iff the tuple was new. Invalidates indexes incrementally. *)

val remove : t -> tuple -> bool
(** [true] iff the tuple was present. *)

val iter : (tuple -> unit) -> t -> unit
(** Iteration walks live hashtable state, so the relation must not be
    mutated while a walk is in progress (callers buffer derived updates
    and apply them afterwards — see {!Plan.exec_rule_deferred}). A
    best-effort version check raises [Invalid_argument] when a callback
    mutates the iterated relation, instead of silently skipping tuples
    when a resize relinks buckets mid-walk. The same contract applies to
    {!fold}, {!iter_matching} and {!fold_matching}. *)

val fold : ('acc -> tuple -> 'acc) -> 'acc -> t -> 'acc

val to_list : t -> tuple list

val copy : t -> t

val clear : t -> unit

val iter_matching : t -> col:int -> value:int -> (tuple -> unit) -> unit
(** Apply a function to every tuple whose [col]th component equals
    [value]; O(matches) via a lazily-built index kept consistent under
    [add]/[remove], with no per-probe allocation. The tuples handed out
    are the relation's own arrays: callers must not mutate them and must
    copy before retaining (as {!add} does). The callback must not mutate
    the probed relation (see {!iter}); raises [Invalid_argument] if it
    does. *)

val fold_matching : t -> col:int -> value:int -> ('acc -> tuple -> 'acc) -> 'acc -> 'acc
(** Fold variant of {!iter_matching}. *)

val prepare : ?cols:int list -> t -> unit
(** Eagerly finalize the per-column probe indexes ([cols], default all
    columns) before the relation is shared read-only across domains.
    Lazy builds are themselves safe to race — a probe that finds no
    index constructs one fully and publishes it atomically, so a
    sibling domain sees either nothing or a finished index — but eager
    preparation avoids sibling readers duplicating the build work.
    @raise Invalid_argument on an out-of-range column. *)

val find : t -> col:int -> value:int -> tuple list
(** Tuples whose [col]th component equals [value]. Compatibility wrapper
    over {!fold_matching}: allocates the result list; probe loops should
    use {!iter_matching}. *)

val choose_probe_col : t -> bound:(int -> bool) -> int option
(** Some column index on which a probe makes sense: the first column
    for which [bound] is true. *)
