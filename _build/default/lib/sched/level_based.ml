module Core = struct
  type t = {
    g : Dag.Graph.t;
    levels : int array;
    buckets : Intf.task Queue.t array;
    queued_levels : int Prelude.Heap.t; (* lazy: may hold stale/duplicate levels *)
    running_at : int array;
    running_levels : int Prelude.Heap.t; (* lazy *)
    started : Prelude.Bitset.t;
    active : Prelude.Bitset.t;
    ops : Intf.ops;
  }

  let create ?ops ?levels g =
    let levels = match levels with Some l -> l | None -> Dag.Levels.compute g in
    let nlevels = Dag.Levels.count levels in
    let n = Dag.Graph.node_count g in
    {
      g;
      levels;
      buckets = Array.init (max nlevels 1) (fun _ -> Queue.create ());
      queued_levels = Prelude.Heap.create ~cmp:compare ~dummy:0 ();
      running_at = Array.make (max nlevels 1) 0;
      running_levels = Prelude.Heap.create ~cmp:compare ~dummy:0 ();
      started = Prelude.Bitset.create n;
      active = Prelude.Bitset.create n;
      ops = (match ops with Some o -> o | None -> Intf.zero_ops ());
    }

  let graph t = t.g
  let levels t = t.levels
  let ops t = t.ops
  let active t = t.active
  let is_started t u = Prelude.Bitset.mem t.started u

  let on_activated t u =
    let l = t.levels.(u) in
    t.ops.bucket_ops <- t.ops.bucket_ops + 1;
    Prelude.Bitset.add t.active u;
    if Queue.is_empty t.buckets.(l) then Prelude.Heap.push t.queued_levels l;
    Queue.add u t.buckets.(l)

  let on_started t u =
    let l = t.levels.(u) in
    t.ops.bucket_ops <- t.ops.bucket_ops + 1;
    Prelude.Bitset.add t.started u;
    if t.running_at.(l) = 0 then Prelude.Heap.push t.running_levels l;
    t.running_at.(l) <- t.running_at.(l) + 1

  let on_completed t u =
    let l = t.levels.(u) in
    t.ops.bucket_ops <- t.ops.bucket_ops + 1;
    Prelude.Bitset.remove t.active u;
    t.running_at.(l) <- t.running_at.(l) - 1;
    assert (t.running_at.(l) >= 0)

  (* Drop started tasks from the bucket front, then stale heap entries. *)
  let rec min_queued_level t =
    match Prelude.Heap.peek t.queued_levels with
    | None -> None
    | Some l ->
      let q = t.buckets.(l) in
      while (not (Queue.is_empty q)) && Prelude.Bitset.mem t.started (Queue.peek q) do
        ignore (Queue.pop q);
        t.ops.bucket_ops <- t.ops.bucket_ops + 1
      done;
      if Queue.is_empty q then begin
        ignore (Prelude.Heap.pop t.queued_levels);
        t.ops.bucket_ops <- t.ops.bucket_ops + 1;
        min_queued_level t
      end
      else Some l

  let rec min_running_level t =
    match Prelude.Heap.peek t.running_levels with
    | None -> None
    | Some l ->
      if t.running_at.(l) > 0 then Some l
      else begin
        ignore (Prelude.Heap.pop t.running_levels);
        t.ops.bucket_ops <- t.ops.bucket_ops + 1;
        min_running_level t
      end

  let next_ready t =
    match min_queued_level t with
    | None -> None
    | Some la -> (
      t.ops.bucket_ops <- t.ops.bucket_ops + 1;
      match min_running_level t with
      | Some lr when lr < la -> None
      | Some _ | None ->
        (* front of bucket la is active and unstarted (cleaned above) *)
        Some (Queue.pop t.buckets.(la)))

  let memory_words t =
    let n = Dag.Graph.node_count t.g in
    (* levels + running counts + buckets + two bitsets *)
    n + Array.length t.running_at + Prelude.Bitset.cardinal t.active
    + (2 * (n / 63))
end

let make ?ops ?levels g =
  let t = Core.create ?ops ?levels g in
  {
    Intf.name = "LevelBased";
    on_activated = Core.on_activated t;
    on_started = Core.on_started t;
    on_completed = Core.on_completed t;
    next_ready = (fun () -> Core.next_ready t);
    ops = Core.ops t;
    memory_words = (fun () -> Core.memory_words t);
  }

let factory = { Intf.fname = "levelbased"; make = (fun g -> make g) }
