type condensation = {
  component : int array;
  count : int;
  members : int array array;
  dag : Graph.t;
}

(* Iterative DFS producing a full postorder of all nodes. *)
let full_postorder g =
  let n = Graph.node_count g in
  let visited = Array.make n false in
  let post = Prelude.Vec.create ~dummy:0 () in
  let node_stack = Prelude.Vec.create ~dummy:0 () in
  let iter_stack = Prelude.Vec.create ~dummy:[||] () in
  let idx_stack = Prelude.Vec.create ~dummy:0 () in
  for root = 0 to n - 1 do
    if not visited.(root) then begin
      visited.(root) <- true;
      Prelude.Vec.push node_stack root;
      Prelude.Vec.push iter_stack (Graph.succ g root);
      Prelude.Vec.push idx_stack 0;
      while not (Prelude.Vec.is_empty node_stack) do
        let top = Prelude.Vec.length node_stack - 1 in
        let u = Prelude.Vec.get node_stack top in
        let children = Prelude.Vec.get iter_stack top in
        let k = Prelude.Vec.get idx_stack top in
        if k < Array.length children then begin
          Prelude.Vec.set idx_stack top (k + 1);
          let v = children.(k) in
          if not visited.(v) then begin
            visited.(v) <- true;
            Prelude.Vec.push node_stack v;
            Prelude.Vec.push iter_stack (Graph.succ g v);
            Prelude.Vec.push idx_stack 0
          end
        end
        else begin
          ignore (Prelude.Vec.pop_exn node_stack);
          ignore (Prelude.Vec.pop_exn iter_stack);
          ignore (Prelude.Vec.pop_exn idx_stack);
          Prelude.Vec.push post u
        end
      done
    end
  done;
  Prelude.Vec.to_array post

let components g =
  let n = Graph.node_count g in
  let post = full_postorder g in
  let gt = Graph.transpose g in
  let comp = Array.make n (-1) in
  let count = ref 0 in
  let queue = Queue.create () in
  for i = n - 1 downto 0 do
    let root = post.(i) in
    if comp.(root) = -1 then begin
      let c = !count in
      incr count;
      comp.(root) <- c;
      Queue.add root queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        Graph.iter_succ gt u (fun ~dst ~eid:_ ->
            if comp.(dst) = -1 then begin
              comp.(dst) <- c;
              Queue.add dst queue
            end)
      done
    end
  done;
  (comp, !count)

let condense g =
  let n = Graph.node_count g in
  let component, count = components g in
  let sizes = Array.make count 0 in
  Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) component;
  let members = Array.map (fun k -> Array.make k 0) sizes in
  let fill = Array.make count 0 in
  for u = 0 to n - 1 do
    let c = component.(u) in
    members.(c).(fill.(c)) <- u;
    fill.(c) <- fill.(c) + 1
  done;
  let b = Graph.Builder.create ~nodes:count () in
  let seen = Hashtbl.create 64 in
  Graph.iter_edges g (fun ~src ~dst ~eid:_ ->
      let cu = component.(src) and cv = component.(dst) in
      if cu <> cv && not (Hashtbl.mem seen (cu, cv)) then begin
        Hashtbl.add seen (cu, cv) ();
        ignore (Graph.Builder.add_edge b cu cv)
      end);
  { component; count; members; dag = Graph.Builder.build b }

let is_trivial g c comp_id =
  Array.length c.members.(comp_id) = 1
  &&
  let u = c.members.(comp_id).(0) in
  not (Graph.mem_edge g u u)
