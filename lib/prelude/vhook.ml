(* Shared-memory instrumentation hook behind {!Vatomic}.

   The virtualized-atomics layer reports every shared access here
   *before* performing it. In the default build the hook is never
   consulted at all (the real [Vatomic] implementation does not
   reference this module); under the [analysis] dune profile every
   load/store/CAS calls [!hook] when [!active] is set, which is how the
   model checker's deterministic scheduler regains control between
   shared operations: the installed hook performs an effect, the
   checker captures the continuation, and the actual memory operation
   only executes once the checker resumes the fiber.

   This module is deliberately effect-free: it knows nothing about the
   checker. It only defines the vocabulary of observable operations and
   a process-wide location namespace. *)

type kind =
  | Aread  (** atomic load *)
  | Awrite  (** atomic store *)
  | Aupdate  (** atomic read-modify-write: CAS, fetch-and-add, exchange *)
  | Pread  (** plain (non-atomic) load of shared data *)
  | Pwrite  (** plain (non-atomic) store to shared data *)
  | Racy_read
      (** intentionally unsynchronized approximate load (e.g. a
          work-stealing victim's length probe); exempt from race
          reporting, creates no happens-before edge *)

type info = {
  loc : int;  (** location id, unique per cell / array element *)
  kind : kind;
  futile : unit -> bool;
      (** for [Aupdate] arising from a CAS: would the CAS fail if it
          executed right now? Lets the checker treat a spinning CAS as
          blocked instead of exploring unbounded failed retries.
          Constant [false] for every other operation. *)
}

let no_futility = fun () -> false

(* Location ids: a single monotone namespace shared by atomics, plain
   cells and array elements. Allocation is unconditional (ids are
   handed out even when no checker is active) so that a structure
   created before a checking run is still addressable during it. *)
let next_loc = Atomic.make 0

let fresh_loc () = Atomic.fetch_and_add next_loc 1

let fresh_locs n = Atomic.fetch_and_add next_loc n

(* [active] gates the hook: the checker flips it on around a run. It is
   only ever read from the single domain the checker schedules fibers
   on, but executor tests in the same binary may run real domains while
   it is [false]; a plain ref is safe because nothing concurrent ever
   observes it [true]. *)
let active = ref false

let hook : (info -> unit) ref = ref (fun _ -> ())

let[@inline] note loc kind = if !active then !hook { loc; kind; futile = no_futility }

let[@inline] note_cas loc futile = if !active then !hook { loc; kind = Aupdate; futile }
