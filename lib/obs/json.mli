(** Minimal strict JSON reader.

    Enough to parse back the trace and bench files this repo writes
    (well-formedness tests, [dms trace], tools/bench_check) without an
    external dependency. Strict RFC 8259: bare [NaN]/[Infinity],
    trailing commas and comments are parse errors — deliberately, so a
    bench emitter printing a non-finite float fails loudly. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of t list
  | Object of (string * t) list

exception Parse_error of string

val parse : string -> t
(** Raises {!Parse_error} with a byte offset on malformed input. *)

val of_file : string -> t
(** Reads and parses a whole file; raises {!Parse_error} or
    [Sys_error]. *)

val member : string -> t -> t option
(** Object field lookup; [None] on non-objects and missing keys. *)

val to_list : t -> t list option

val to_assoc : t -> (string * t) list option

val to_str : t -> string option

val to_float : t -> float option

val to_int : t -> int option
(** [Some] only for numbers with integral value. *)

val to_bool : t -> bool option
