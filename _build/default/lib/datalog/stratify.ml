type t = {
  predicates : string array;
  index_of : (string, int) Hashtbl.t;
  graph : Dag.Graph.t;
  negative : bool array;
  condensation : Dag.Scc.condensation;
  stratum_of_comp : int array;
  stratum_count : int;
  edb : bool array;
}

exception Unstratifiable of string

let collect_predicates program =
  let index_of = Hashtbl.create 32 in
  let names = Prelude.Vec.create ~dummy:"" () in
  let see name =
    if not (Hashtbl.mem index_of name) then begin
      Hashtbl.add index_of name (Prelude.Vec.length names);
      Prelude.Vec.push names name
    end
  in
  List.iter
    (fun (r : Ast.rule) ->
      see r.head.Ast.pred;
      List.iter
        (function
          | Ast.Pos a | Ast.Neg a -> see a.Ast.pred
          | Ast.Cmp _ -> ())
        r.body)
    program;
  (Prelude.Vec.to_array names, index_of)

let analyze program =
  let predicates, index_of = collect_predicates program in
  let n = Array.length predicates in
  let b = Dag.Graph.Builder.create ~nodes:n () in
  let negative = Prelude.Vec.create ~dummy:false () in
  let edb = Array.make n true in
  let seen_edges = Hashtbl.create 64 in
  List.iter
    (fun (r : Ast.rule) ->
      let h = Hashtbl.find index_of r.head.Ast.pred in
      if r.body <> [] then edb.(h) <- false;
      (* aggregation is non-monotone: its dependencies stratify like
         negation, so recursion through an aggregate is rejected *)
      let aggregates = Ast.rule_is_aggregate r in
      List.iter
        (fun lit ->
          match lit with
          | Ast.Cmp _ -> ()
          | Ast.Pos a | Ast.Neg a ->
            let neg =
              aggregates
              || (match lit with Ast.Neg _ -> true | Ast.Pos _ | Ast.Cmp _ -> false)
            in
            let src = Hashtbl.find index_of a.Ast.pred in
            (* dedupe identical (src, dst, polarity) edges *)
            if not (Hashtbl.mem seen_edges (src, h, neg)) then begin
              Hashtbl.add seen_edges (src, h, neg) ();
              ignore (Dag.Graph.Builder.add_edge b src h);
              Prelude.Vec.push negative neg
            end)
        r.body)
    program;
  let graph = Dag.Graph.Builder.build b in
  let negative = Prelude.Vec.to_array negative in
  let condensation = Dag.Scc.condense graph in
  (* negation inside an SCC is unstratifiable *)
  Dag.Graph.iter_edges graph (fun ~src ~dst ~eid ->
      if
        negative.(eid)
        && condensation.Dag.Scc.component.(src) = condensation.Dag.Scc.component.(dst)
      then raise (Unstratifiable predicates.(dst)));
  (* strata: longest path in the condensation counting negative edges *)
  let order = Dag.Topo.sort_exn condensation.Dag.Scc.dag in
  let stratum_of_comp = Array.make condensation.Dag.Scc.count 0 in
  (* condensation edges lost the polarity; recover it per predicate edge *)
  Array.iter
    (fun comp ->
      Array.iter
        (fun p ->
          Dag.Graph.iter_succ graph p (fun ~dst ~eid ->
              let cd = condensation.Dag.Scc.component.(dst) in
              if cd <> comp then begin
                let need =
                  stratum_of_comp.(comp) + if negative.(eid) then 1 else 0
                in
                if need > stratum_of_comp.(cd) then stratum_of_comp.(cd) <- need
              end))
        condensation.Dag.Scc.members.(comp))
    order;
  let stratum_count = 1 + Array.fold_left max 0 stratum_of_comp in
  {
    predicates;
    index_of;
    graph;
    negative;
    condensation;
    stratum_of_comp;
    stratum_count;
    edb;
  }

let stratum t name =
  match Hashtbl.find_opt t.index_of name with
  | None -> raise Not_found
  | Some i -> t.stratum_of_comp.(t.condensation.Dag.Scc.component.(i))

let predicates_by_stratum t =
  let out = Array.make t.stratum_count [] in
  Array.iteri
    (fun i name ->
      let s = t.stratum_of_comp.(t.condensation.Dag.Scc.component.(i)) in
      out.(s) <- name :: out.(s))
    t.predicates;
  Array.map List.rev out

let scc_order t =
  let order = Dag.Topo.sort_exn t.condensation.Dag.Scc.dag in
  (* stable sort by stratum, preserving topological order within *)
  let keyed = Array.map (fun c -> (t.stratum_of_comp.(c), c)) order in
  let a = Array.copy keyed in
  (* counting-style stable sort via List.stable_sort on stratum only *)
  let sorted =
    List.stable_sort (fun (s1, _) (s2, _) -> compare s1 s2) (Array.to_list a)
  in
  Array.of_list (List.map snd sorted)

let rules_for_comp t program comp =
  List.filter
    (fun (r : Ast.rule) ->
      match Hashtbl.find_opt t.index_of r.Ast.head.Ast.pred with
      | Some i -> t.condensation.Dag.Scc.component.(i) = comp
      | None -> false)
    program
