(** Binary min-heaps with a user-supplied comparison.

    Used as the event queue of the discrete-event simulator and for
    priority-ordered ready queues. Not stable: ties pop in unspecified
    order (callers that need determinism include a tiebreaker in [cmp]). *)

type 'a t

val create : ?capacity:int -> cmp:('a -> 'a -> int) -> dummy:'a -> unit -> 'a t

val size : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option

val top_exn : 'a t -> 'a
(** The minimum element without removing it; raises if empty. The
    allocation-free [peek] for hot paths that checked {!is_empty}. *)

val pop : 'a t -> 'a option
(** Remove and return the minimum element. *)

val pop_exn : 'a t -> 'a

val clear : 'a t -> unit

val of_array : cmp:('a -> 'a -> int) -> dummy:'a -> 'a array -> 'a t
(** Heapify in O(n). *)

val to_sorted_list : 'a t -> 'a list
(** Destructive: drains the heap. *)
