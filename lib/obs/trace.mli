(** A trace: one {!Ring} per worker domain, sharing an epoch.

    Thread the trace through a run and hand each worker
    [ring t wid] — out-of-range ids (and the {!disabled} trace) get
    {!Ring.null}, so instrumentation sites never branch on an
    option. *)

type t

val disabled : t
(** No rings; [ring] always returns {!Ring.null}. The default for
    every [?obs] parameter in this repo. *)

val create : ?capacity:int -> domains:int -> unit -> t
(** Fresh rings with a common epoch taken now. [capacity] is per
    ring (see {!Ring.create}). *)

val enabled : t -> bool

val epoch : t -> float

val domains : t -> int

val ring : t -> int -> Ring.t
(** [ring t wid]; {!Ring.null} when disabled or out of range. *)

val written : t -> int
(** Total records emitted across all rings. *)

val dropped : t -> int
(** Total records lost to wraparound across all rings. *)
