test/test_dag.ml: Alcotest Array Dag Format Gen List Prelude Printf QCheck QCheck_alcotest String
