lib/sched/logicblox.mli: Dag Intf
