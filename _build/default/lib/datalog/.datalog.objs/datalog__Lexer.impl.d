lib/datalog/lexer.ml: Ast Buffer Format List Option Printf String
