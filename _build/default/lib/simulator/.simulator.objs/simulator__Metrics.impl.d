lib/simulator/metrics.ml: Format Sched
