type comp_stats = { comp : int; rounds : int; derived : int; work : int }

let insert_facts db program =
  List.iter
    (fun (r : Ast.rule) ->
      if r.Ast.body = [] then begin
        if not (Ast.atom_is_ground r.Ast.head) then
          invalid_arg "Eval: non-ground fact";
        ignore (Database.add_fact db r.Ast.head)
      end)
    program

(* One component's fixpoint: semi-naive once seeded by a full round. *)
let eval_comp ~engine db (anal : Stratify.t) program comp =
  let symbols = Database.symbols db in
  let view = Matcher.view_of_db db in
  let card pred =
    match Database.find db pred with Some r -> Relation.cardinality r | None -> 0
  in
  let rules =
    List.filter
      (fun (r : Ast.rule) -> r.Ast.body <> [])
      (Stratify.rules_for_comp anal program comp)
  in
  match rules with
  | [] -> { comp; rounds = 0; derived = 0; work = 0 }
  | [ r ] when Ast.rule_is_aggregate r ->
    (* aggregates are functional over strictly-lower strata: one shot *)
    let work = ref 0 in
    let derived = ref 0 in
    let rel =
      Database.relation db r.Ast.head.Ast.pred ~arity:(List.length r.Ast.head.Ast.args)
    in
    List.iter
      (fun tup -> if Relation.add rel tup then incr derived)
      (Aggregate.evaluate ~engine ~symbols ~view ~card ~work r);
    { comp; rounds = 1; derived = !derived; work = !work }
  | rules ->
    List.iter
      (fun (r : Ast.rule) ->
        if Ast.rule_is_aggregate r then
          invalid_arg
            (Printf.sprintf "Eval: aggregate rule for %s in a recursive component"
               r.Ast.head.Ast.pred))
      rules;
    begin
    let comp_preds = Hashtbl.create 8 in
    Array.iter
      (fun p -> Hashtbl.replace comp_preds anal.Stratify.predicates.(p) ())
      anal.Stratify.condensation.Dag.Scc.members.(comp);
    let work = ref 0 in
    let derived = ref 0 in
    let fresh_delta () : (string, Relation.t) Hashtbl.t = Hashtbl.create 8 in
    let delta = ref (fresh_delta ()) in
    let stage_into delta (r : Ast.rule) rel tup =
      if Relation.add rel tup then begin
        incr derived;
        let d =
          match Hashtbl.find_opt delta r.Ast.head.Ast.pred with
          | Some d -> d
          | None ->
            let d = Relation.create ~arity:(Relation.arity rel) in
            Hashtbl.add delta r.Ast.head.Ast.pred d;
            d
        in
        ignore (Relation.add d tup)
      end
    in
    (* one executor per rule: every (rule, delta position) plan is
       compiled once and reused across all fixpoint rounds. Staging goes
       through {!Plan.exec_rule_deferred}: [stage_into] grows the head
       relation, which a recursive rule is itself probing mid-call. *)
    let execs =
      List.map
        (fun (r : Ast.rule) ->
          let rel =
            Database.relation db r.Ast.head.Ast.pred
              ~arity:(List.length r.Ast.head.Ast.args)
          in
          (r, rel, Plan.executor ~engine ~symbols ~card r))
        rules
    in
    (* round 0: full evaluation *)
    List.iter
      (fun (r, rel, ex) ->
        Plan.exec_rule_deferred ~view ~work
          ~keep:(fun tup -> not (Relation.mem rel tup))
          ~on_derived:(stage_into !delta r rel)
          ex)
      execs;
    let rounds = ref 1 in
    let recursive_positions =
      List.map
        (fun ((r : Ast.rule), rel, ex) ->
          let poss = ref [] in
          List.iteri
            (fun i lit ->
              match lit with
              | Ast.Pos a when Hashtbl.mem comp_preds a.Ast.pred -> poss := i :: !poss
              | Ast.Pos _ | Ast.Neg _ | Ast.Cmp _ -> ())
            r.Ast.body;
          (r, rel, ex, List.rev !poss))
        execs
    in
    while Hashtbl.length !delta > 0 do
      incr rounds;
      let next = fresh_delta () in
      List.iter
        (fun ((r : Ast.rule), rel, ex, positions) ->
          List.iter
            (fun i ->
              let pred =
                match List.nth r.Ast.body i with
                | Ast.Pos a -> a.Ast.pred
                | Ast.Neg _ | Ast.Cmp _ -> assert false
              in
              match Hashtbl.find_opt !delta pred with
              | None -> ()
              | Some d ->
                Plan.exec_rule_deferred ~view ~delta:(i, d) ~work
                  ~keep:(fun tup -> not (Relation.mem rel tup))
                  ~on_derived:(stage_into next r rel)
                  ex)
            positions)
        recursive_positions;
      delta := next
    done;
    { comp; rounds = !rounds; derived = !derived; work = !work }
  end

let run ?(engine = Plan.default_engine) ?(lint = false) db program =
  (* programs built as Ast values bypass the parser's range-restriction
     gate; [~lint] closes that hole with named-variable evidence *)
  if lint then Lint.enforce program;
  Aggregate.validate program;
  let anal = Stratify.analyze program in
  Matcher.register db program;
  insert_facts db program;
  let stats =
    Array.to_list
      (Array.map (eval_comp ~engine db anal program) (Stratify.scc_order anal))
  in
  (anal, stats)

let run_naive db program =
  Aggregate.validate program;
  let anal = Stratify.analyze program in
  Matcher.register db program;
  insert_facts db program;
  let symbols = Database.symbols db in
  let view = Matcher.view_of_db db in
  let card pred =
    match Database.find db pred with Some r -> Relation.cardinality r | None -> 0
  in
  let work = ref 0 in
  let by_stratum = Stratify.predicates_by_stratum anal in
  Array.iteri
    (fun s _ ->
      let in_stratum (r : Ast.rule) =
        r.Ast.body <> [] && Stratify.stratum anal r.Ast.head.Ast.pred = s
      in
      let rules = List.filter in_stratum program in
      let changed = ref true in
      while !changed do
        changed := false;
        List.iter
          (fun (r : Ast.rule) ->
            let rel =
              Database.relation db r.Ast.head.Ast.pred
                ~arity:(List.length r.Ast.head.Ast.args)
            in
            if Ast.rule_is_aggregate r then
              (* lower strata are final: recomputing is stable *)
              List.iter
                (fun tup -> if Relation.add rel tup then changed := true)
                (Aggregate.evaluate ~engine:Plan.Interpreted ~symbols ~view ~card
                   ~work r)
            else begin
              (* buffer new heads: a recursive rule scans the relation
                 it derives into, which must not grow mid-walk *)
              let fresh = ref [] in
              Matcher.eval_rule ~symbols ~view ~work
                ~on_derived:(fun tup ->
                  if not (Relation.mem rel tup) then fresh := Array.copy tup :: !fresh)
                r;
              List.iter
                (fun tup -> if Relation.add rel tup then changed := true)
                (List.rev !fresh)
            end)
          rules
      done)
    by_stratum

(* Interned codes are database-local (aggregates mint fresh constants in
   whatever order they fire), so agreement is judged on the decoded
   constants, not on raw tuples. *)
let databases_agree a b =
  let decoded db name r =
    Relation.fold (fun acc tup -> Database.tuple_to_atom db name tup :: acc) [] r
    |> List.sort compare
  in
  let in_other name db_mine r other =
    match Database.find other name with
    | None when Relation.cardinality r = 0 -> Ok ()
    | None -> Error (Printf.sprintf "predicate %s missing from one database" name)
    | Some r' ->
      if Relation.cardinality r <> Relation.cardinality r' then
        Error
          (Printf.sprintf "predicate %s: %d vs %d tuples" name
             (Relation.cardinality r) (Relation.cardinality r'))
      else if decoded db_mine name r <> decoded other name r' then
        Error (Printf.sprintf "predicate %s: tuple sets differ" name)
      else Ok ()
  in
  let rec check = function
    | [] -> Ok ()
    | (name, r) :: rest -> (
      match in_other name a r b with Ok () -> check rest | Error e -> Error e)
  in
  match check (Database.predicates a) with
  | Error e -> Error e
  | Ok () ->
    let rec check2 = function
      | [] -> Ok ()
      | (name, r) :: rest -> (
        match in_other name b r a with Ok () -> check2 rest | Error e -> Error e)
    in
    check2 (Database.predicates b)
