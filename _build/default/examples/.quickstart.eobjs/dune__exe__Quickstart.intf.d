examples/quickstart.mli:
