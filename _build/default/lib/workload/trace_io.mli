(** Plain-text trace serialization.

    Format (one record per line, ['#'] comments, blank lines ignored):
    {v
    trace <name>
    nodes <n>
    node <id> <T|P> (unit | seq <w> | par <w> | stages <width> <length> <chip>)
    edge <src> <dst> <0|1>       # 1 = output change propagates
    initial <id> <id> ...        # may repeat
    v}
    [node] lines may be omitted for task nodes of shape [unit].
    Edge ids are assigned in file order. *)

val write : out_channel -> Trace.t -> unit

val to_file : string -> Trace.t -> unit

val read : ?name:string -> in_channel -> Trace.t
(** @raise Failure with a line number on malformed input. *)

val of_file : string -> Trace.t

val of_string : ?name:string -> string -> Trace.t
