(** Strongly connected components and condensation (Kosaraju, iterative).

    Datalog's predicate dependency graph is cyclic wherever predicates
    are mutually recursive; the materialization DAG of the paper arises
    by collapsing each recursive clique into a single fixpoint task.
    [condense] produces that DAG along with the component mapping. *)

type condensation = {
  component : int array; (** node -> component id, in [0, count) *)
  count : int;
  members : int array array; (** component id -> member nodes *)
  dag : Graph.t;
      (** Condensed graph: one node per component, deduplicated edges
          between distinct components. Component ids are assigned in
          reverse topological discovery order and the condensed graph is
          always acyclic. *)
}

val components : Graph.t -> int array * int
(** [components g] = (component map, component count). *)

val condense : Graph.t -> condensation

val is_trivial : Graph.t -> condensation -> int -> bool
(** [is_trivial g c id] is true when component [id] is a single node
    without a self-edge in the original graph [g] — for the Datalog
    predicate graph, a non-recursive predicate. *)
