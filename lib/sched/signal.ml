type t = {
  g : Dag.Graph.t;
  expected : int array;
  received : int array;
  is_active : Prelude.Bitset.t;
  started : Prelude.Bitset.t;
  ready : Intf.task Queue.t;
  mutable bootstrapped : bool;
  ops : Intf.ops;
}

let create ?ops g =
  let n = Dag.Graph.node_count g in
  {
    g;
    expected = Array.init n (Dag.Graph.in_degree g);
    received = Array.make n 0;
    is_active = Prelude.Bitset.create n;
    started = Prelude.Bitset.create n;
    ready = Queue.create ();
    bootstrapped = false;
    ops = (match ops with Some o -> o | None -> Intf.zero_ops ());
  }

let on_activated t u = Prelude.Bitset.add t.is_active u

(* [u] has all parent signals. If active, it waits for the engine to
   run it; otherwise it is a no-op node that forwards "no change" to its
   children right away — cascading through inactive regions. *)
let settle t u0 =
  let worklist = Queue.create () in
  Queue.add u0 worklist;
  while not (Queue.is_empty worklist) do
    let u = Queue.pop worklist in
    if Prelude.Bitset.mem t.is_active u then Queue.add u t.ready
    else
      Dag.Graph.iter_succ t.g u (fun ~dst ~eid:_ ->
          t.ops.messages <- t.ops.messages + 1;
          t.received.(dst) <- t.received.(dst) + 1;
          if t.received.(dst) = t.expected.(dst) then Queue.add dst worklist)
  done

let bootstrap t =
  t.bootstrapped <- true;
  Array.iter (fun s -> settle t s) (Dag.Graph.sources t.g)

let on_started t u = Prelude.Bitset.add t.started u

let on_completed t u =
  Dag.Graph.iter_succ t.g u (fun ~dst ~eid:_ ->
      t.ops.messages <- t.ops.messages + 1;
      t.received.(dst) <- t.received.(dst) + 1;
      if t.received.(dst) = t.expected.(dst) then settle t dst)

let rec pop_ready t =
  if Queue.is_empty t.ready then None
  else begin
    let u = Queue.pop t.ready in
    if Prelude.Bitset.mem t.started u then pop_ready t else Some u
  end

let next_ready t =
  if not t.bootstrapped then bootstrap t;
  pop_ready t

let memory_words t =
  let n = Dag.Graph.node_count t.g in
  (2 * n) + (2 * (n / 63)) + Queue.length t.ready

let make ?ops g =
  let t = create ?ops g in
  {
    Intf.name = "SignalPropagation";
    on_activated = on_activated t;
    on_started = on_started t;
    on_completed = on_completed t;
    next_ready = (fun () -> next_ready t);
    next_ready_into = None;
    ops = t.ops;
    memory_words = (fun () -> memory_words t);
  }

let factory = { Intf.fname = "signal"; make = (fun g -> make g) }
