lib/dag/reach.mli: Graph Prelude
