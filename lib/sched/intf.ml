type task = int

type ops = {
  mutable queries : int;
  mutable scans : int;
  mutable messages : int;
  mutable bucket_ops : int;
  mutable bfs_steps : int;
}

let zero_ops () =
  { queries = 0; scans = 0; messages = 0; bucket_ops = 0; bfs_steps = 0 }

let total_ops o = o.queries + o.scans + o.messages + o.bucket_ops + o.bfs_steps

let weighted_ops o =
  (20.0 *. float_of_int o.queries)
  +. (5.0 *. float_of_int o.scans)
  +. float_of_int o.messages
  +. float_of_int o.bucket_ops
  +. (2.0 *. float_of_int o.bfs_steps)

let add_ops ~into o =
  into.queries <- into.queries + o.queries;
  into.scans <- into.scans + o.scans;
  into.messages <- into.messages + o.messages;
  into.bucket_ops <- into.bucket_ops + o.bucket_ops;
  into.bfs_steps <- into.bfs_steps + o.bfs_steps

let pp_ops ppf o =
  Format.fprintf ppf
    "queries=%d scans=%d messages=%d bucket_ops=%d bfs_steps=%d total=%d"
    o.queries o.scans o.messages o.bucket_ops o.bfs_steps (total_ops o)

type instance = {
  name : string;
  on_activated : task -> unit;
  on_started : task -> unit;
  on_completed : task -> unit;
  next_ready : unit -> task option;
  next_ready_into : (task array -> int -> int) option;
  ops : ops;
  memory_words : unit -> int;
}

type factory = { fname : string; make : Dag.Graph.t -> instance }
