lib/prelude/rng.mli:
