examples/pathological_rescue.ml: Format Incr_sched List Simulator Workload
