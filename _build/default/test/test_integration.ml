(* End-to-end tests through the Incr_sched facade: Datalog programs to
   schedules, the paper's workload shapes, and cross-layer consistency. *)

let test case name f = Alcotest.test_case name case f

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

(* ---------- facade basics ---------- *)

let facade_schedule_and_validate () =
  let trace = Workload.Pathological.tight_example ~levels:8 in
  List.iter
    (fun sched ->
      let m = Incr_sched.schedule ~procs:4 ~validate:true ~sched trace in
      check_bool "positive makespan" true (m.Simulator.Metrics.makespan > 0.0))
    [ "levelbased"; "lbl:4"; "logicblox"; "signal"; "hybrid" ]

let facade_unknown_scheduler () =
  let trace = Workload.Pathological.deep_chain ~n:3 in
  Alcotest.check_raises "unknown" (Invalid_argument "unknown scheduler \"wat\"")
    (fun () -> ignore (Incr_sched.schedule ~sched:"wat" trace))

let facade_compare_defaults () =
  let trace = Workload.Pathological.deep_chain ~n:20 in
  let results = Incr_sched.compare ~procs:4 trace in
  check_int "four schedulers" 4 (List.length results);
  List.iter
    (fun m ->
      check_int "all executed" 20 m.Simulator.Metrics.tasks_executed)
    results

let facade_trace_io () =
  let trace = Workload.Pathological.broom ~spine:5 ~fan:3 in
  let tmp = Filename.temp_file "trace" ".txt" in
  Workload.Trace_io.to_file tmp trace;
  let trace' = Incr_sched.trace_of_file tmp in
  Sys.remove tmp;
  check_int "same nodes" 8 (Dag.Graph.node_count trace'.Workload.Trace.graph)

(* ---------- Datalog session ---------- *)

let session_end_to_end () =
  let session =
    Incr_sched.materialize
      {|
        edge("a","b"). edge("b","c"). edge("c","d").
        path(X,Y) :- edge(X,Y).
        path(X,Z) :- path(X,Y), edge(Y,Z).
      |}
  in
  check_int "paths" 6 (List.length (Incr_sched.query session "path"));
  let tt =
    Incr_sched.update session ~additions:[ {|edge("d","e")|} ] ~deletions:[]
  in
  check_int "paths after extension" 10 (List.length (Incr_sched.query session "path"));
  let trace = tt.Datalog.To_trace.trace in
  List.iter
    (fun sched ->
      let m = Incr_sched.schedule ~procs:2 ~validate:true ~sched trace in
      check_int "both components run" 2 m.Simulator.Metrics.tasks_executed)
    [ "levelbased"; "logicblox"; "hybrid"; "signal" ]

let session_query_missing_pred () =
  let session = Incr_sched.materialize {|edge("a","b").|} in
  check_int "missing pred is empty" 0 (List.length (Incr_sched.query session "nope"))

let session_syntax_error () =
  match Incr_sched.materialize "p(X) :-" with
  | exception Datalog.Parser.Error _ -> ()
  | _ -> Alcotest.fail "expected parser error"

let session_unstratifiable () =
  match Incr_sched.materialize "e(\"x\"). p(X) :- e(X), !p(X)." with
  | exception Datalog.Stratify.Unstratifiable _ -> ()
  | _ -> Alcotest.fail "expected Unstratifiable"

(* The whole pipeline preserves semantics: schedule order never affects
   the final database (the single-execution model's point). *)
let update_then_requery_consistency () =
  let mk () =
    Incr_sched.materialize
      {|
        parent("r","a"). parent("r","b"). parent("a","c").
        anc(X,Y) :- parent(X,Y).
        anc(X,Z) :- anc(X,Y), parent(Y,Z).
        leaf(X) :- isnode(X), !haskid(X).
        haskid(X) :- parent(X,Y).
        isnode(X) :- parent(X,Y).
        isnode(Y) :- parent(X,Y).
      |}
  in
  let s1 = mk () in
  let _ =
    Incr_sched.update s1 ~additions:[ {|parent("c","d")|} ]
      ~deletions:[ {|parent("r","b")|} ]
  in
  let s2 =
    Incr_sched.materialize
      {|
        parent("r","a"). parent("a","c"). parent("c","d").
        anc(X,Y) :- parent(X,Y).
        anc(X,Z) :- anc(X,Y), parent(Y,Z).
        leaf(X) :- isnode(X), !haskid(X).
        haskid(X) :- parent(X,Y).
        isnode(X) :- parent(X,Y).
        isnode(Y) :- parent(X,Y).
      |}
  in
  check_bool "same anc" true
    (Incr_sched.query s1 "anc" = Incr_sched.query s2 "anc");
  check_bool "same leaves" true
    (Incr_sched.query s1 "leaf" = Incr_sched.query s2 "leaf")

(* ---------- paper trace #5: Table II shape ---------- *)

let paper_trace5_shapes () =
  let trace = Workload.Paper_traces.generate 5 in
  let procs = Workload.Paper_traces.processors in
  let m name = Incr_sched.schedule ~procs ~sched:name trace in
  let lb = m "levelbased" in
  let lbx = m "logicblox" in
  let lbl20 = m "lbl:20" in
  (* Table II ordering: LevelBased >= LBL(20) >= LogicBlox-ish *)
  check_bool "LB worst" true
    (lb.Simulator.Metrics.makespan >= lbl20.Simulator.Metrics.makespan -. 1e-6);
  check_bool "LBL within 2x of LogicBlox" true
    (lbl20.Simulator.Metrics.makespan <= 2.0 *. lbx.Simulator.Metrics.makespan);
  (* every scheduler executes the same active set *)
  check_int "same tasks" lb.Simulator.Metrics.tasks_executed
    lbx.Simulator.Metrics.tasks_executed;
  (* LevelBased memory is O(V); LogicBlox carries the interval lists *)
  check_bool "memory ordering" true
    (lb.Simulator.Metrics.memory_words < lbx.Simulator.Metrics.memory_words)

let paper_trace5_hybrid_overhead () =
  let trace = Workload.Paper_traces.generate 5 in
  let procs = Workload.Paper_traces.processors in
  let h = Incr_sched.schedule ~procs ~sched:"hybrid" trace in
  let lbx = Incr_sched.schedule ~procs ~sched:"logicblox" trace in
  (* Table III: hybrid overhead <= LogicBlox overhead (with slack) *)
  check_bool "hybrid overhead no worse" true
    (h.Simulator.Metrics.sched_overhead
    <= (1.1 *. lbx.Simulator.Metrics.sched_overhead) +. 1e-6)

(* ---------- clairvoyant as a reference ---------- *)

let clairvoyant_reference () =
  let trace = Workload.Paper_traces.generate 5 in
  let opt = Incr_sched.clairvoyant ~procs:8 trace in
  let lb = Incr_sched.schedule ~procs:8 ~sched:"levelbased" trace in
  check_bool "clairvoyant at most LB here" true
    (opt.Simulator.Metrics.makespan <= lb.Simulator.Metrics.makespan +. 1e-6)

(* ---------- meta over the facade ---------- *)

let meta_on_paper_trace () =
  let trace = Workload.Paper_traces.generate 5 in
  let r =
    Simulator.Meta.run
      ~config:{ Simulator.Engine.procs = 8; op_cost = 1e-7; record_log = false }
      ~budget_words:(1 lsl 30) ~a:Sched.Logicblox.factory trace
  in
  check_bool "ran both arms" true (r.Simulator.Meta.a_metrics <> None);
  check_bool "makespan positive" true (r.Simulator.Meta.makespan > 0.0)

let () =
  Alcotest.run "integration"
    [
      ( "facade",
        [
          test `Quick "schedule and validate" facade_schedule_and_validate;
          test `Quick "unknown scheduler" facade_unknown_scheduler;
          test `Quick "compare defaults" facade_compare_defaults;
          test `Quick "trace file round trip" facade_trace_io;
        ] );
      ( "datalog-session",
        [
          test `Quick "materialize, update, schedule" session_end_to_end;
          test `Quick "missing predicate" session_query_missing_pred;
          test `Quick "syntax errors surface" session_syntax_error;
          test `Quick "unstratifiable programs surface" session_unstratifiable;
          test `Quick "incremental equals rebuild" update_then_requery_consistency;
        ] );
      ( "paper-shapes",
        [
          test `Slow "trace #5 Table II ordering" paper_trace5_shapes;
          test `Slow "trace #5 hybrid overhead" paper_trace5_hybrid_overhead;
          test `Slow "clairvoyant reference" clairvoyant_reference;
          test `Slow "meta scheduler" meta_on_paper_trace;
        ] );
    ]
